#include "tensor/autograd.h"

#include <cmath>
#include <cstring>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/expr.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace benchtemp::tensor {
namespace {

/// Numerically checks d(loss)/d(param) for every entry of `param`, where
/// `loss_fn` rebuilds the scalar loss from scratch (so perturbed forward
/// passes are consistent).
void CheckGradient(const Var& param, const std::function<Var()>& loss_fn,
                   float tolerance = 2e-2f) {
  Var loss = loss_fn();
  ZeroGrad({param});
  Backward(loss);
  const Tensor analytic = param->grad;
  ASSERT_EQ(analytic.size(), param->value.size());
  const float eps = 1e-3f;
  for (int64_t i = 0; i < param->value.size(); ++i) {
    const float saved = param->value.at(i);
    param->value.at(i) = saved + eps;
    const float up = loss_fn()->value.at(0);
    param->value.at(i) = saved - eps;
    const float down = loss_fn()->value.at(0);
    param->value.at(i) = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic.at(i), numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "entry " << i;
  }
}

TEST(AutogradTest, AddBackward) {
  Rng rng(1);
  Var a = Parameter(Tensor::Randn({3, 4}, rng));
  Var b = Parameter(Tensor::Randn({3, 4}, rng));
  auto loss = [&] { return Sum(Mul(Add(a, b), Add(a, b))); };
  CheckGradient(a, loss);
  CheckGradient(b, loss);
}

TEST(AutogradTest, AddRowBroadcastBackward) {
  Rng rng(2);
  Var a = Parameter(Tensor::Randn({5, 3}, rng));
  Var bias = Parameter(Tensor::Randn({1, 3}, rng));
  auto loss = [&] { return Sum(Tanh(Add(a, bias))); };
  CheckGradient(bias, loss);
  CheckGradient(a, loss);
}

TEST(AutogradTest, MulColumnBroadcastBackward) {
  Rng rng(3);
  Var a = Parameter(Tensor::Randn({4, 3}, rng));
  Var col = Parameter(Tensor::Randn({4, 1}, rng));
  auto loss = [&] { return Sum(Mul(a, col)); };
  CheckGradient(col, loss);
  CheckGradient(a, loss);
}

TEST(AutogradTest, MatMulBackward) {
  Rng rng(4);
  Var a = Parameter(Tensor::Randn({3, 5}, rng));
  Var b = Parameter(Tensor::Randn({5, 2}, rng));
  auto loss = [&] { return Sum(MatMul(a, b)); };
  CheckGradient(a, loss);
  CheckGradient(b, loss);
}

TEST(AutogradTest, MatMulValue) {
  Var a = Constant(Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  Var b = Constant(Tensor::FromVector({2, 2}, {5, 6, 7, 8}));
  Var c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c->value.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c->value.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c->value.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c->value.at(1, 1), 50.0f);
}

TEST(AutogradTest, ConcatSliceBackward) {
  Rng rng(5);
  Var a = Parameter(Tensor::Randn({3, 2}, rng));
  Var b = Parameter(Tensor::Randn({3, 4}, rng));
  auto loss = [&] {
    Var joined = ConcatCols({a, b});
    return Sum(Mul(SliceCols(joined, 1, 3), SliceCols(joined, 2, 3)));
  };
  CheckGradient(a, loss);
  CheckGradient(b, loss);
}

TEST(AutogradTest, ConcatRowsBackward) {
  Rng rng(6);
  Var a = Parameter(Tensor::Randn({2, 3}, rng));
  Var b = Parameter(Tensor::Randn({4, 3}, rng));
  auto loss = [&] { return Sum(Tanh(ConcatRows({a, b}))); };
  CheckGradient(a, loss);
  CheckGradient(b, loss);
}

TEST(AutogradTest, SliceRowsBackward) {
  Rng rng(7);
  Var a = Parameter(Tensor::Randn({5, 3}, rng));
  auto loss = [&] { return Sum(Sigmoid(SliceRows(a, 1, 3))); };
  CheckGradient(a, loss);
}

TEST(AutogradTest, GatherRowsBackwardAccumulatesDuplicates) {
  Rng rng(8);
  Var table = Parameter(Tensor::Randn({4, 2}, rng));
  auto loss = [&] { return Sum(GatherRows(table, {0, 2, 0, 0})); };
  Var l = loss();
  ZeroGrad({table});
  Backward(l);
  EXPECT_FLOAT_EQ(table->grad.at(0, 0), 3.0f);  // row 0 gathered 3 times
  EXPECT_FLOAT_EQ(table->grad.at(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(table->grad.at(1, 0), 0.0f);
  CheckGradient(table, loss);
}

TEST(AutogradTest, UnaryBackward) {
  Rng rng(9);
  Var a = Parameter(Tensor::Randn({4, 3}, rng, 0.8f));
  CheckGradient(a, [&] { return Sum(Sigmoid(a)); });
  CheckGradient(a, [&] { return Sum(Tanh(a)); });
  CheckGradient(a, [&] { return Sum(Exp(a)); });
  CheckGradient(a, [&] { return Sum(Cos(a)); });
  CheckGradient(a, [&] { return Sum(Sin(a)); });
}

TEST(AutogradTest, ReluBackwardAwayFromKink) {
  // Entries are pushed away from zero so the numeric check is valid.
  Var a = Parameter(Tensor::FromVector({2, 2}, {1.0f, -1.5f, 2.0f, -0.5f}));
  CheckGradient(a, [&] { return Sum(Relu(a)); });
}

TEST(AutogradTest, SoftmaxRowsSumsToOne) {
  Rng rng(10);
  Var a = Constant(Tensor::Randn({6, 5}, rng));
  Var s = SoftmaxRows(a);
  for (int64_t r = 0; r < 6; ++r) {
    float total = 0.0f;
    for (int64_t c = 0; c < 5; ++c) total += s->value.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(AutogradTest, SoftmaxBackward) {
  Rng rng(11);
  Var a = Parameter(Tensor::Randn({3, 4}, rng));
  Var weights = Constant(Tensor::Randn({3, 4}, rng));
  CheckGradient(a, [&] { return Sum(Mul(SoftmaxRows(a), weights)); });
}

TEST(AutogradTest, MaskedSoftmaxZerosMaskedEntries) {
  Var a = Constant(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
  Tensor mask = Tensor::FromVector({2, 3}, {1, 0, 1, 0, 0, 0});
  Var s = MaskedSoftmaxRows(a, mask);
  EXPECT_FLOAT_EQ(s->value.at(0, 1), 0.0f);
  EXPECT_NEAR(s->value.at(0, 0) + s->value.at(0, 2), 1.0f, 1e-5f);
  // Fully masked row: all zeros, no NaNs.
  for (int64_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(s->value.at(1, c), 0.0f);
}

TEST(AutogradTest, BceWithLogitsMatchesManual) {
  Var logits = Parameter(Tensor::FromVector({2}, {0.3f, -1.2f}));
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  Var loss = BceWithLogits(logits, targets);
  const float expected =
      0.5f * (std::log(1.0f + std::exp(0.3f)) - 0.3f +
              std::log(1.0f + std::exp(-1.2f)));
  EXPECT_NEAR(loss->value.at(0), expected, 1e-5f);
  CheckGradient(logits, [&] { return BceWithLogits(logits, targets); });
}

TEST(AutogradTest, BceWithLogitsStableAtExtremes) {
  Var logits = Constant(Tensor::FromVector({2}, {80.0f, -80.0f}));
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  Var loss = BceWithLogits(logits, targets);
  EXPECT_TRUE(std::isfinite(loss->value.at(0)));
  EXPECT_NEAR(loss->value.at(0), 0.0f, 1e-4f);
}

TEST(AutogradTest, SoftmaxCrossEntropyBackward) {
  Rng rng(12);
  Var logits = Parameter(Tensor::Randn({4, 3}, rng));
  std::vector<int64_t> labels = {0, 2, 1, 2};
  CheckGradient(logits, [&] { return SoftmaxCrossEntropy(logits, labels); });
}

TEST(AutogradTest, MseLossBackward) {
  Rng rng(13);
  Var pred = Parameter(Tensor::Randn({3, 2}, rng));
  Tensor target = Tensor::Randn({3, 2}, rng);
  CheckGradient(pred, [&] { return MseLoss(pred, target); });
}

TEST(AutogradTest, BatchDotBackward) {
  Rng rng(14);
  const int64_t k = 3;
  Var q = Parameter(Tensor::Randn({2, 4}, rng));
  Var keys = Parameter(Tensor::Randn({2 * k, 4}, rng));
  auto loss = [&] { return Sum(Tanh(BatchDot(q, keys, k))); };
  CheckGradient(q, loss);
  CheckGradient(keys, loss);
}

TEST(AutogradTest, BatchWeightedSumBackward) {
  Rng rng(15);
  const int64_t k = 3;
  Var w = Parameter(Tensor::Randn({2, k}, rng));
  Var values = Parameter(Tensor::Randn({2 * k, 4}, rng));
  auto loss = [&] { return Sum(Sigmoid(BatchWeightedSum(w, values, k))); };
  CheckGradient(w, loss);
  CheckGradient(values, loss);
}

TEST(AutogradTest, MeanRowsBackward) {
  Rng rng(16);
  Var a = Parameter(Tensor::Randn({4, 3}, rng));
  CheckGradient(a, [&] { return Sum(Tanh(MeanRows(a))); });
}

TEST(AutogradTest, TransposeBackward) {
  Rng rng(17);
  Var a = Parameter(Tensor::Randn({3, 5}, rng));
  Var b = Constant(Tensor::Randn({5, 3}, rng));
  CheckGradient(a, [&] { return Sum(Mul(Transpose(a), b)); });
}

TEST(AutogradTest, ReshapeBackward) {
  Rng rng(18);
  Var a = Parameter(Tensor::Randn({2, 6}, rng));
  CheckGradient(a, [&] { return Sum(Tanh(Reshape(a, {3, 4}))); });
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // The same parameter feeds two paths; gradients must accumulate once per
  // path (topological, not naive recursive, backprop).
  Var a = Parameter(Tensor::FromVector({1}, {2.0f}));
  Var b = Mul(a, a);     // a^2
  Var c = Add(b, a);     // a^2 + a
  Var loss = Sum(Mul(c, c));  // (a^2 + a)^2, d/da = 2(a^2+a)(2a+1) = 60
  Backward(loss);
  EXPECT_NEAR(a->grad.at(0), 60.0f, 1e-3f);
}

TEST(AutogradTest, NoGradThroughConstants) {
  Var a = Constant(Tensor::FromVector({1}, {3.0f}));
  Var loss = Sum(Mul(a, a));
  EXPECT_FALSE(loss->requires_grad);
  Backward(loss);  // must be a no-op, not a crash
  EXPECT_EQ(a->grad.size(), 0);
}

TEST(AutogradTest, DetachStopsGradient) {
  Var a = Parameter(Tensor::FromVector({1}, {2.0f}));
  Var loss = Sum(Mul(Detach(a), a));  // only the direct path contributes
  Backward(loss);
  EXPECT_NEAR(a->grad.at(0), 2.0f, 1e-5f);
}

TEST(AutogradTest, DeepChainBackwardDoesNotOverflowStack) {
  Var a = Parameter(Tensor::FromVector({1}, {0.5f}));
  Var x = a;
  for (int i = 0; i < 20000; ++i) x = ScalarMul(x, 1.0f);
  Backward(Sum(x));
  EXPECT_NEAR(a->grad.at(0), 1.0f, 1e-5f);
}

// ---------------------------------------------------------------------------
// Numeric goldens for the fused loss prelude. The trainer averages the two
// BCE halves through the expression layer (one fused pass); these pin the
// exact values so a fused-evaluator regression cannot silently shift the
// loss numerics the published tables depend on.
// ---------------------------------------------------------------------------

TEST(AutogradTest, FusedBcePreludeGolden) {
  Var pos = Parameter(Tensor::FromVector({2}, {0.3f, 1.1f}));
  Var neg = Parameter(Tensor::FromVector({2}, {-0.7f, 0.2f}));
  Tensor ones = Tensor::FromVector({2}, {1.0f, 1.0f});
  Tensor zeros = Tensor::FromVector({2}, {0.0f, 0.0f});
  Var loss = expr::ScalarMul(
      expr::Add(expr::Ex(BceWithLogits(pos, ones)),
                expr::Ex(BceWithLogits(neg, zeros))),
      0.5f);
  const double pos_bce = 0.5 * ((std::log(1.0 + std::exp(0.3)) - 0.3) +
                                (std::log(1.0 + std::exp(1.1)) - 1.1));
  const double neg_bce = 0.5 * (std::log(1.0 + std::exp(-0.7)) +
                                std::log(1.0 + std::exp(0.2)));
  EXPECT_NEAR(loss->value.at(0),
              static_cast<float>(0.5 * (pos_bce + neg_bce)), 1e-6f);
  Backward(loss);
  // d loss / d pos_i = 0.5 * (sigmoid(pos_i) - 1) / n.
  EXPECT_NEAR(pos->grad.at(0),
              0.25f * (1.0f / (1.0f + std::exp(-0.3f)) - 1.0f), 1e-6f);
  EXPECT_NEAR(neg->grad.at(1), 0.25f * (1.0f / (1.0f + std::exp(-0.2f))),
              1e-6f);
}

TEST(AutogradTest, FusedBcePreludeMatchesEagerBitwise) {
  Rng rng(40);
  Var pos1 = Parameter(Tensor::Randn({8}, rng));
  Var neg1 = Parameter(Tensor::Randn({8}, rng));
  Var pos2 = Parameter(pos1->value);
  Var neg2 = Parameter(neg1->value);
  Tensor ones = Tensor::Full({8}, 1.0f);
  Tensor zeros = Tensor::Zeros({8});
  Var fused = expr::ScalarMul(
      expr::Add(expr::Ex(BceWithLogits(pos1, ones)),
                expr::Ex(BceWithLogits(neg1, zeros))),
      0.5f);
  Var eager = ScalarMul(
      Add(BceWithLogits(pos2, ones), BceWithLogits(neg2, zeros)), 0.5f);
  ASSERT_EQ(fused->value.size(), 1);
  EXPECT_EQ(std::memcmp(fused->value.data(), eager->value.data(), 4), 0);
  Backward(fused);
  Backward(eager);
  EXPECT_EQ(std::memcmp(pos1->grad.data(), pos2->grad.data(),
                        static_cast<size_t>(pos1->grad.size()) * 4),
            0);
  EXPECT_EQ(std::memcmp(neg1->grad.data(), neg2->grad.data(),
                        static_cast<size_t>(neg1->grad.size()) * 4),
            0);
}

TEST(AutogradTest, SoftmaxRowsGolden) {
  // SoftmaxRows runs Exp / Sum / normalize as one internal kernel pass;
  // pin its exact output for a known row so that path stays put.
  Var a = Constant(Tensor::FromVector({1, 3}, {1.0f, 2.0f, 3.0f}));
  Var s = SoftmaxRows(a);
  const double z = std::exp(1.0 - 3.0) + std::exp(2.0 - 3.0) + 1.0;
  EXPECT_NEAR(s->value.at(0, 0), static_cast<float>(std::exp(-2.0) / z),
              1e-6f);
  EXPECT_NEAR(s->value.at(0, 1), static_cast<float>(std::exp(-1.0) / z),
              1e-6f);
  EXPECT_NEAR(s->value.at(0, 2), static_cast<float>(1.0 / z), 1e-6f);
}

TEST(AutogradTest, MaskedSoftmaxRowsGolden) {
  Var a = Constant(Tensor::FromVector({1, 3}, {2.0f, 5.0f, 4.0f}));
  Tensor mask = Tensor::FromVector({1, 3}, {1.0f, 0.0f, 1.0f});
  Var s = MaskedSoftmaxRows(a, mask);
  const double z = std::exp(2.0 - 4.0) + 1.0;
  EXPECT_NEAR(s->value.at(0, 0), static_cast<float>(std::exp(-2.0) / z),
              1e-6f);
  EXPECT_FLOAT_EQ(s->value.at(0, 1), 0.0f);
  EXPECT_NEAR(s->value.at(0, 2), static_cast<float>(1.0 / z), 1e-6f);
}

}  // namespace
}  // namespace benchtemp::tensor
