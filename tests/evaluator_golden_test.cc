// Golden evaluator tests: every expected value below is hand-computed and
// cross-checked against scikit-learn (roc_auc_score, average_precision_score,
// precision_recall_fscore_support(average="weighted"), numpy std with
// ddof=1), pinning the implementations to the conventions the paper's
// tables assume.

#include "core/evaluator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace benchtemp::core {
namespace {

// ---------------------------------------------------------------------------
// RocAuc / AveragePrecision with tie groups.
// ---------------------------------------------------------------------------

// scores  = {0.8, 0.8, 0.6, 0.4, 0.4, 0.2}
// labels  = {  1,   0,   1,   0,   1,   0}
// Two tie groups (0.8 and 0.4) force the midrank path.
//
// Ascending midranks: 0.2 -> 1; {0.4, 0.4} -> 2.5; 0.6 -> 4; {0.8, 0.8} ->
// 5.5. Positive rank sum = 2.5 + 4 + 5.5 = 12, U = 12 - 3*4/2 = 6, AUC =
// 6 / (3*3) = 2/3 — sklearn.roc_auc_score agrees.
TEST(EvaluatorGoldenTest, RocAucWithTieGroupsMatchesSklearn) {
  const std::vector<double> scores = {0.8, 0.8, 0.6, 0.4, 0.4, 0.2};
  const std::vector<int> labels = {1, 0, 1, 0, 1, 0};
  EXPECT_NEAR(RocAuc(scores, labels), 2.0 / 3.0, 1e-12);
}

// Same data. Descending with ties collapsed to one threshold per distinct
// score:
//   after 0.8 group: tp=1, recall=1/3, precision=1/2 -> AP += 1/3 * 1/2
//   after 0.6:       tp=2, recall=2/3, precision=2/3 -> AP += 1/3 * 2/3
//   after 0.4 group: tp=3, recall=1,   precision=3/5 -> AP += 1/3 * 3/5
//   after 0.2:       recall unchanged                -> AP += 0
// AP = 1/6 + 2/9 + 1/5 = 53/90 — sklearn.average_precision_score agrees.
TEST(EvaluatorGoldenTest, AveragePrecisionWithTieGroupsMatchesSklearn) {
  const std::vector<double> scores = {0.8, 0.8, 0.6, 0.4, 0.4, 0.2};
  const std::vector<int> labels = {1, 0, 1, 0, 1, 0};
  EXPECT_NEAR(AveragePrecision(scores, labels), 53.0 / 90.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Degenerate-input contracts (pinned in the evaluator.h doc comments):
// inputs that cannot express a ranking return the chance value, never NaN
// or an arbitrary extreme.
// ---------------------------------------------------------------------------

TEST(EvaluatorGoldenTest, RocAucDegenerateInputsReturnChance) {
  // Empty input, single-class labels, and all-tied scores: no ranking
  // information exists, so AUC is the coin-flip 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({}, {}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.1, 0.5}, {1, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.1, 0.5}, {0, 0, 0}), 0.5);
  // All-tied scores: every rank is the midrank, AUC = 0.5 exactly.
  EXPECT_DOUBLE_EQ(RocAuc({0.7, 0.7, 0.7, 0.7}, {1, 0, 1, 0}), 0.5);
}

TEST(EvaluatorGoldenTest, AveragePrecisionDegenerateInputsReturnPrevalence) {
  // No positives -> 0; all positives -> 1 (one threshold recovers
  // everything at precision 1); all-tied scores -> prevalence num_pos / n,
  // the single threshold's precision — sklearn agrees on each.
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.1, 0.5}, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.1, 0.5}, {1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({0.7, 0.7, 0.7, 0.7}, {1, 0, 1, 0}),
                   0.5);
  EXPECT_DOUBLE_EQ(AveragePrecision({0.3, 0.3, 0.3, 0.3}, {1, 0, 0, 0}),
                   0.25);
}

// ---------------------------------------------------------------------------
// Weighted precision/recall/F1 on an imbalanced 3-class fixture.
// ---------------------------------------------------------------------------

// actual    = {0,0,0,0,0,0, 1,1,1, 2}   (support 6 / 3 / 1)
// predicted = {0,0,0,0,0,1, 0,1,1, 1}
//
// Per class: tp = {5, 2, 0}; precision = {5/6, 2/4, 0}; recall =
// {5/6, 2/3, 0}; F1 = {5/6, 4/7, 0}. Support weights {0.6, 0.3, 0.1}.
//
//   weighted precision = 0.6*(5/6) + 0.3*0.5   = 0.65
//   weighted recall    = 0.6*(5/6) + 0.3*(2/3) = 0.70
//   weighted F1        = 0.6*(5/6) + 0.3*(4/7) = 47/70  (sklearn)
//
// The pre-fix composition — harmonic mean of the *aggregates* —
// gives 2*0.65*0.70/1.35 = 91/135 != 47/70; the class-wise P/R imbalance of
// class 1 is what separates the two.
TEST(EvaluatorGoldenTest, WeightedPrfImbalancedMatchesSklearn) {
  const std::vector<int> actual = {0, 0, 0, 0, 0, 0, 1, 1, 1, 2};
  const std::vector<int> predicted = {0, 0, 0, 0, 0, 1, 0, 1, 1, 1};
  const WeightedPrf prf = WeightedPrecisionRecallF1(predicted, actual, 3);
  EXPECT_NEAR(prf.precision, 0.65, 1e-12);
  EXPECT_NEAR(prf.recall, 0.70, 1e-12);
  EXPECT_NEAR(prf.f1, 47.0 / 70.0, 1e-12);
}

TEST(EvaluatorGoldenTest, WeightedF1DiffersFromPreFixComposition) {
  const std::vector<int> actual = {0, 0, 0, 0, 0, 0, 1, 1, 1, 2};
  const std::vector<int> predicted = {0, 0, 0, 0, 0, 1, 0, 1, 1, 1};
  const WeightedPrf prf = WeightedPrecisionRecallF1(predicted, actual, 3);
  // The old formula computed F1 from the weighted aggregates.
  const double pre_fix_f1 =
      2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
  EXPECT_NEAR(pre_fix_f1, 91.0 / 135.0, 1e-12);
  // The two conventions measurably disagree on this fixture, demonstrating
  // the bug the fix addresses.
  EXPECT_GT(std::abs(prf.f1 - pre_fix_f1), 1e-3);
}

// A degenerate-precision class must not drag the whole score to zero: with
// perfect predictions every per-class F1 is 1 and the weighted mean is 1.
TEST(EvaluatorGoldenTest, WeightedPrfPerfectPredictionsScoreOne) {
  const std::vector<int> actual = {0, 0, 0, 1, 2};
  const WeightedPrf prf = WeightedPrecisionRecallF1(actual, actual, 3);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
}

// ---------------------------------------------------------------------------
// Summarize: sample (ddof=1) standard deviation.
// ---------------------------------------------------------------------------

TEST(EvaluatorGoldenTest, SummarizeUsesSampleStd) {
  // numpy.std([1,2,3], ddof=1) == 1.0 (population std would be sqrt(2/3)).
  const MeanStd three = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(three.mean, 2.0);
  EXPECT_NEAR(three.std, 1.0, 1e-12);

  // numpy.std([1,3], ddof=1) == sqrt(2).
  const MeanStd two = Summarize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(two.mean, 2.0);
  EXPECT_NEAR(two.std, std::sqrt(2.0), 1e-12);
}

TEST(EvaluatorGoldenTest, SummarizeSingleRunHasZeroStd) {
  const MeanStd one = Summarize({0.875});
  EXPECT_DOUBLE_EQ(one.mean, 0.875);
  EXPECT_DOUBLE_EQ(one.std, 0.0);
}

}  // namespace
}  // namespace benchtemp::core
