#include "models/ncache.h"

#include <gtest/gtest.h>

namespace benchtemp::models {
namespace {

TEST(NCacheTableTest, StartsEmpty) {
  NCacheTable table(10, 4);
  const auto features = table.JointFeatures(0, 1);
  ASSERT_EQ(features.size(),
            static_cast<size_t>(NCacheTable::kJointFeatureDim));
  for (float f : features) EXPECT_FLOAT_EQ(f, 0.0f);
}

TEST(NCacheTableTest, DirectEdgeSetsContainmentBits) {
  NCacheTable table(10, 4);
  tensor::Rng rng(1);
  table.Observe(2, 7, rng);
  const auto features = table.JointFeatures(2, 7);
  EXPECT_FLOAT_EQ(features[0], 1.0f);  // 7 in c1(2)
  EXPECT_FLOAT_EQ(features[1], 1.0f);  // 2 in c1(7)
  // Symmetric query flips the bits consistently.
  const auto reversed = table.JointFeatures(7, 2);
  EXPECT_FLOAT_EQ(reversed[0], 1.0f);
  EXPECT_FLOAT_EQ(reversed[1], 1.0f);
}

TEST(NCacheTableTest, CommonNeighborOverlap) {
  NCacheTable table(10, 4);
  tensor::Rng rng(2);
  table.Observe(0, 5, rng);
  table.Observe(1, 5, rng);  // 0 and 1 now share neighbor 5
  const auto features = table.JointFeatures(0, 1);
  EXPECT_FLOAT_EQ(features[2], 0.25f);  // one overlap / cache size 4
  const auto unrelated = table.JointFeatures(0, 3);
  EXPECT_FLOAT_EQ(unrelated[2], 0.0f);
}

TEST(NCacheTableTest, RingBufferEvictsOldest) {
  NCacheTable table(10, 2);  // tiny cache
  tensor::Rng rng(3);
  table.Observe(0, 5, rng);
  table.Observe(0, 6, rng);
  table.Observe(0, 7, rng);  // evicts 5 from c1(0)
  EXPECT_FLOAT_EQ(table.JointFeatures(0, 5)[0], 0.0f);
  EXPECT_FLOAT_EQ(table.JointFeatures(0, 6)[0], 1.0f);
  EXPECT_FLOAT_EQ(table.JointFeatures(0, 7)[0], 1.0f);
}

TEST(NCacheTableTest, TwoHopPropagation) {
  NCacheTable table(10, 4);
  tensor::Rng rng(4);
  // Alternate (0, 5) and (1, 5): c1(5) keeps holding 0, and each (1, 5)
  // event samples a member of c1(5) into c2(1) — over 8 rounds node 0
  // lands in c2(1) with overwhelming probability (candidates equal to the
  // node itself are skipped, so 0 is the only possible entry besides 5's
  // other partners).
  for (int i = 0; i < 8; ++i) {
    table.Observe(0, 5, rng);
    table.Observe(1, 5, rng);
  }
  // Channel 4 of (1, 5) = |c2(1) ∩ c1(5)|: c2(1) holds 0, c1(5) holds 0.
  const auto via5 = table.JointFeatures(1, 5);
  EXPECT_GT(via5[4], 0.0f);
}

TEST(NCacheTableTest, ResetClears) {
  NCacheTable table(10, 4);
  tensor::Rng rng(5);
  table.Observe(0, 5, rng);
  table.Reset();
  for (float f : table.JointFeatures(0, 5)) EXPECT_FLOAT_EQ(f, 0.0f);
}

TEST(NCacheTableTest, SizeBytesScalesWithNodes) {
  NCacheTable small(10, 4);
  NCacheTable large(100, 4);
  EXPECT_EQ(large.SizeBytes(), 10 * small.SizeBytes());
}

TEST(NCacheTableTest, NoSelfInsertionThroughTwoHop) {
  NCacheTable table(10, 4);
  tensor::Rng rng(6);
  // Repeated (0, 5): c1(5) holds 0; the 2-hop sample for node 0 from
  // c1(5) would be 0 itself and must be skipped.
  for (int i = 0; i < 20; ++i) table.Observe(0, 5, rng);
  // If 0 ever entered c2(0), JointFeatures(0, x) channel 5 could produce
  // spurious overlap with c2(x) containing 0. Check overlap of c2(0) with
  // c1(5) = {0}: must be 0 because c2(0) excludes 0.
  EXPECT_FLOAT_EQ(table.JointFeatures(0, 5)[4], 0.0f);
}

}  // namespace
}  // namespace benchtemp::models
