#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/random.h"

namespace benchtemp::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FactoryHelpers) {
  Tensor full = Tensor::Full({2, 2}, 3.5f);
  EXPECT_FLOAT_EQ(full.at(1, 1), 3.5f);
  Tensor ones = Tensor::Ones({5});
  EXPECT_FLOAT_EQ(ones.at(4), 1.0f);
  Tensor from = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(from.at(1, 2), 6.0f);
}

TEST(TensorTest, Rank1ViewedAsColumn) {
  Tensor t({7});
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 1);
}

TEST(TensorTest, CopiesAreDeep) {
  Tensor a = Tensor::Full({2}, 1.0f);
  Tensor b = a;
  b.at(0) = 9.0f;
  EXPECT_FLOAT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, AddInPlaceAndScale) {
  Tensor a = Tensor::Full({3}, 2.0f);
  Tensor b = Tensor::Full({3}, 0.5f);
  a.AddInPlace(b);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(0), 5.0f);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).ShapeString(), "[2, 3]");
  EXPECT_EQ(Tensor().ShapeString(), "[]");
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.UniformInt(10);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 10);
  }
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(8);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.Zipf(100, 1.2);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 100);
    if (x < 10) ++low;
    if (x >= 90) ++high;
  }
  EXPECT_GT(low, 5 * high);  // heavy head
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(9);
  int64_t low = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.Zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 5000.0, 0.5, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(10);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  int64_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 8000.0, 0.75, 0.04);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float x = rng.Normal(2.0f, 3.0f);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

}  // namespace
}  // namespace benchtemp::tensor
