// Tests for the observability layer (src/obs): the determinism contract's
// observability extension (counters bit-identical across thread counts),
// phase accounting sanity against wall-clock, the disabled path's
// zero-allocation guarantee, and the export/validate round trip.

#include "obs/metrics.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "obs/export.h"
#include "runtime/thread_pool.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the usual operator new also covers
// operator new[] (the default array form forwards here), so any heap
// activity in the process bumps this counter.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace benchtemp {
namespace {

using core::LinkPredictionJob;
using core::LinkPredictionResult;
using core::RunLinkPrediction;
using graph::TemporalGraph;

/// Same learnable fixture as trainer_test: a small bipartite stream with
/// enough structure that a real training run exercises every phase.
TemporalGraph MakeLearnableGraph() {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 25;
  cfg.num_edges = 900;
  cfg.edge_reuse_prob = 0.7;
  cfg.affinity = 0.7;
  cfg.edge_feature_dim = 4;
  cfg.label_classes = 2;
  cfg.label_positive_rate = 0.15;
  cfg.seed = 21;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

LinkPredictionJob MakeSmallJob(const TemporalGraph& g) {
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = models::ModelKind::kTgn;
  job.model_config.embedding_dim = 8;
  job.model_config.time_dim = 8;
  job.model_config.num_neighbors = 4;
  job.model_config.num_layers = 1;
  job.model_config.num_heads = 2;
  job.train_config.max_epochs = 2;
  job.train_config.batch_size = 100;
  job.train_config.learning_rate = 1e-3f;
  return job;
}

/// Restores the enabled override, the global thread count, and a clean
/// registry no matter how a test exits.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = runtime::ThreadPool::Global().num_threads();
  }
  void TearDown() override {
    obs::MetricRegistry::OverrideEnabledForTest(-1);
    runtime::ThreadPool::Global().SetNumThreads(original_threads_);
    obs::MetricRegistry::Global().Reset();
  }
  int original_threads_ = 1;
};

TEST_F(ObsTest, CountersBitIdenticalAcrossThreadCounts) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  const TemporalGraph g = MakeLearnableGraph();

  std::vector<std::string> digests;
  for (const int threads : {1, 4}) {
    runtime::ThreadPool::Global().SetNumThreads(threads);
    registry.Reset();
    const LinkPredictionResult result = RunLinkPrediction(MakeSmallJob(g));
    ASSERT_EQ(result.status, models::ModelStatus::kOk);
    digests.push_back(registry.CountersDigest());
  }

  // Every counter is a pure function of the job stream, so the digest is
  // byte-identical regardless of BENCHTEMP_NUM_THREADS.
  EXPECT_EQ(digests[0], digests[1]) << "counters diverged across thread "
                                       "counts:\n"
                                    << digests[0] << "---\n"
                                    << digests[1];

  // And the run actually counted things (the digest is not trivially zero).
  EXPECT_GT(registry.value(obs::Counter::kTrainBatches), 0);
  EXPECT_GT(registry.value(obs::Counter::kTrainEvents), 0);
  EXPECT_GT(registry.value(obs::Counter::kSamplerNegatives), 0);
  EXPECT_GT(registry.value(obs::Counter::kParallelForCalls), 0);
}

TEST_F(ObsTest, PhaseSecondsAreAttributedAndBoundedByWallTime) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  registry.Reset();

  const TemporalGraph g = MakeLearnableGraph();
  const double wall_start = obs::NowSeconds();
  const LinkPredictionResult result = RunLinkPrediction(MakeSmallJob(g));
  const double wall = obs::NowSeconds() - wall_start;
  ASSERT_EQ(result.status, models::ModelStatus::kOk);

  double sum = 0.0;
  for (int p = 0; p < obs::kNumPhases; ++p) {
    EXPECT_GE(result.efficiency.phase_seconds[p], 0.0);
    sum += result.efficiency.phase_seconds[p];
  }
  // The run-attributed phase time is non-trivial and never exceeds the
  // job's wall-time (5% slack for clock granularity).
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, wall * 1.05);
  // The batch-stream phases all ran.
  using obs::Phase;
  EXPECT_GT(result.efficiency.phase_seconds[static_cast<int>(Phase::kSample)],
            0.0);
  EXPECT_GT(result.efficiency.phase_seconds[static_cast<int>(Phase::kForward)],
            0.0);
  EXPECT_GT(
      result.efficiency.phase_seconds[static_cast<int>(Phase::kBackward)], 0.0);
  EXPECT_GT(result.efficiency.phase_seconds[static_cast<int>(Phase::kEval)],
            0.0);

  // The process-wide totals saw at least as many timed intervals.
  const obs::PhaseTotals totals = registry.phase_totals();
  int64_t intervals = 0;
  for (int p = 0; p < obs::kNumPhases; ++p) intervals += totals.count[p];
  EXPECT_GT(intervals, 0);
}

TEST_F(ObsTest, DisabledPathTakesNoAllocationsAndCountsNothing) {
  auto& registry = obs::MetricRegistry::Global();

  // Warm up: materialize the singleton and this thread's slot while
  // collection is on, so the measured region exercises steady state.
  obs::MetricRegistry::OverrideEnabledForTest(1);
  { obs::ScopedPhaseTimer warm(obs::Phase::kSample); }
  registry.Add(obs::Counter::kTrainBatches, 0);
  registry.DrainThisThread(nullptr);
  registry.Reset();

  obs::MetricRegistry::OverrideEnabledForTest(0);
  const int64_t batches_before = registry.value(obs::Counter::kTrainBatches);
  const int64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedPhaseTimer timer(obs::Phase::kForward);
    registry.Add(obs::Counter::kTrainBatches, 1);
    registry.AddPhaseSeconds(obs::Phase::kForward, 1.0);
  }
  registry.DrainThisThread(nullptr);
  const int64_t allocs_after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after, allocs_before)
      << "disabled observability hot path allocated";
  EXPECT_EQ(registry.value(obs::Counter::kTrainBatches), batches_before);
  const obs::PhaseTotals totals = registry.phase_totals();
  EXPECT_EQ(totals.count[static_cast<int>(obs::Phase::kForward)], 0);
}

TEST_F(ObsTest, ExportJsonRoundTripsThroughValidator) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  registry.Reset();

  registry.Add(obs::Counter::kTrainBatches, 7);
  registry.Add(obs::Counter::kTrainEvents, 700);
  registry.SetGauge("train.retried_epoch_seconds", 0.25);
  registry.AddPhaseSeconds(obs::Phase::kForward, 0.125);
  registry.DrainThisThread(nullptr);

  obs::RunRecord run;
  run.model = "TGN";
  run.dataset = "uci";
  run.task = "link_prediction";
  run.epochs_run = 7;
  run.seconds_per_epoch = 0.5;
  run.train_events_per_second = 1400.0;
  run.phase_seconds[static_cast<int>(obs::Phase::kForward)] = 0.125;
  registry.AppendRun(run);

  obs::ExportInfo info;
  info.bench = "obs_test";
  info.wall_seconds = 1.5;
  info.max_rss_gb = 0.25;
  const std::string json = obs::ExportJson(info);

  std::string error;
  EXPECT_TRUE(obs::ValidateMetricsJson(json, &error)) << error;
  EXPECT_NE(json.find("\"schema\": \"benchtemp.metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"train.batches\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"TGN\""), std::string::npos);
  EXPECT_NE(json.find("\"train.retried_epoch_seconds\""), std::string::npos);

  // The CSV sink shares the schema header.
  const std::string csv = obs::ExportCsv(info);
  EXPECT_EQ(csv.rfind("# benchtemp.metrics v1 bench=obs_test", 0), 0u);
  EXPECT_NE(csv.find("counter,train.batches,7,"), std::string::npos);
}

TEST_F(ObsTest, ValidatorRejectsMalformedAndWrongSchema) {
  std::string error;
  EXPECT_FALSE(obs::ValidateMetricsJson("not json at all", &error));
  EXPECT_FALSE(obs::ValidateMetricsJson("{}", &error));
  EXPECT_FALSE(obs::ValidateMetricsJson(
      "{\"schema\": \"something.else\", \"schema_version\": 1}", &error));

  // A version bump must be rejected, not silently accepted.
  obs::MetricRegistry::OverrideEnabledForTest(1);
  obs::MetricRegistry::Global().Reset();
  std::string json = obs::ExportJson(obs::ExportInfo{});
  const std::string tag = "\"schema_version\": 1";
  const size_t at = json.find(tag);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, tag.size(), "\"schema_version\": 2");
  EXPECT_FALSE(obs::ValidateMetricsJson(json, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;
}

TEST_F(ObsTest, ResetZeroesEverything) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  registry.Add(obs::Counter::kRollbacks, 3);
  registry.SetGauge("g", 1.0);
  registry.AddPhaseSeconds(obs::Phase::kEval, 2.0);
  registry.AppendRun(obs::RunRecord{});
  registry.Reset();

  EXPECT_EQ(registry.value(obs::Counter::kRollbacks), 0);
  EXPECT_TRUE(registry.gauges().empty());
  EXPECT_TRUE(registry.runs().empty());
  const obs::PhaseTotals totals = registry.phase_totals();
  for (int p = 0; p < obs::kNumPhases; ++p) {
    EXPECT_DOUBLE_EQ(totals.seconds[p], 0.0);
    EXPECT_EQ(totals.count[p], 0);
  }
}

}  // namespace
}  // namespace benchtemp
