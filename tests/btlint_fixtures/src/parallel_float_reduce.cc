// Fixture: racy scalar float accumulation across ParallelFor iterations.
#include "runtime/thread_pool.h"

namespace fixture {

double SumSquares(const float* values, int64_t n) {
  double total = 0.0;
  benchtemp::runtime::ParallelFor(0, n, 256, [&](int64_t i) {
    total += static_cast<double>(values[i]) * values[i];
  });
  return total;
}

// Chunk-local accumulators declared inside the body are fine (deterministic
// per-chunk reduction) and must NOT fire.
double ChunkLocalOk(const float* values, int64_t n) {
  benchtemp::runtime::ParallelFor(0, n, 256, [&](int64_t i) {
    float local = 0.0f;
    local += values[i];
    (void)local;
  });
  return 0.0;
}

}  // namespace fixture
