// btlint: allow-file(banned-random)
// Fixture: a file-level allow covers every occurrence of that one rule —
// but only that rule. Expected findings: raw-new (x1), nothing else.
#include <cstdlib>

namespace fixture {

int First() { return std::rand(); }

int Second() { return std::rand(); }

int* StillFlagged() { return new int(1); }

}  // namespace fixture
