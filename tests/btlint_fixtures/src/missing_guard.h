// Fixture: header with no include guard and no #pragma once.
namespace fixture {

int Unguarded();

}  // namespace fixture
