// Fixture: draining unordered containers in implementation-defined order.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

double SumValues(const std::unordered_map<int, double>& scores) {
  double total = 0.0;
  for (const auto& entry : scores) total += entry.second;
  return total;
}

std::vector<int> CopyOut(const std::unordered_set<int>& keep) {
  return std::vector<int>(keep.begin(), keep.end());
}

}  // namespace fixture
