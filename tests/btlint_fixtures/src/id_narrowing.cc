// Fixture: unchecked 64-to-32-bit narrowing of node/edge ids.
#include <cstdint>

namespace fixture {

int32_t ToNode(int64_t node_id) { return static_cast<int32_t>(node_id); }

int32_t ToEdge(int64_t raw) {
  const int64_t edge_idx = raw * 2;
  return static_cast<int32_t>(edge_idx);
}

}  // namespace fixture
