// Fixture: a class holding a mutex whose data members carry no GUARDED_BY —
// the unannotated-mutex rule must fire on the mutex member's line.
#include <mutex>

#include <string>
#include <vector>

namespace fixture {

class UnannotatedRegistry {
 public:
  void Record(const std::string& name, double value);
  double Total() const;

 private:
  mutable std::mutex mutex_;  // expect: unannotated-mutex
  std::vector<std::string> names_;
  double total_ = 0.0;
};

// A fully annotated sibling must stay silent even with a fake GUARDED_BY
// macro (the rule keys on the attribute spelling, not the definition).
#define GUARDED_BY(x)

class AnnotatedRegistry {
 public:
  void Record(double value);

 private:
  mutable std::mutex mutex_;
  double total_ GUARDED_BY(mutex_) = 0.0;
};

}  // namespace fixture
