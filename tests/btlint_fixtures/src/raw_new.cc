// Fixture: raw new/delete.
namespace fixture {

struct Blob {
  int payload = 0;
};

int Leaky() {
  Blob* b = new Blob();
  const int v = b->payload;
  delete b;
  return v;
}

// `= delete` is declaration syntax, not deallocation, and must NOT fire.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};

}  // namespace fixture
