// Fixture: exact floating-point comparisons.
namespace fixture {

bool Same(float a, float b) { return a == b; }

bool IsUnit(double x) { return x == 1.0; }

bool Changed(double before, double after) { return before != after; }

}  // namespace fixture
