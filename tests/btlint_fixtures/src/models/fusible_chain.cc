// Fixture: chained eager elementwise ops that the expression layer in
// tensor/expr.h would fuse into a single pass.
namespace fixture {

// Depth-3 chain: fires once, reported at the outermost call.
Var GateEager(const Var& x, const Var& h) {
  return Sigmoid(Add(Mul(x, h), x));
}

// Depth-4 chain (JODIE-style select): still one finding, at the root.
Var SelectEager(const Var& a, const Var& b, const Var& mask) {
  return Add(Mul(a, mask), Mul(b, ScalarAdd(ScalarMul(mask, -1.0f), 1.0f)));
}

// Depth-2 chain: below the threshold, stays silent.
Var InvMask(const Var& mask) {
  return ScalarAdd(ScalarMul(mask, -1.0f), 1.0f);
}

// The fused spelling of GateEager: expr::-qualified calls never count.
Var GateFused(const Var& x, const Var& h) {
  return expr::Sigmoid(expr::Add(expr::Mul(expr::Ex(x), expr::Ex(h)),
                                 expr::Ex(x)));
}

// Member calls are some other API, not the tensor free functions.
Var MemberCalls(Builder& b, const Var& x) {
  return b.Sigmoid(b.Add(b.Mul(x, x), x));
}

// Depth-3 chain with a targeted allow: suppressed.
Var GateAllowed(const Var& x, const Var& h) {
  return Sigmoid(Add(Mul(x, h), x));  // btlint: allow(fusible-chain)
}

}  // namespace fixture
