// Fixture: mutable shared state in the parallel core (path src/tensor/...).
#include <cstdint>

namespace benchtemp::tensor {

int64_t g_call_count = 0;

int64_t CountCalls() {
  static int64_t hits = 0;
  ++hits;
  ++g_call_count;
  return hits;
}

// Immutable and thread-local state is fine and must NOT fire.
constexpr int kLimit = 8;
const int kOther = 9;
thread_local int scratch = 0;

}  // namespace benchtemp::tensor
