// Fixture: the escape hatch. Construction-time code that genuinely wants a
// checked accessor suppresses the rule on the exact line.
namespace benchtemp::tensor::kernels {

float CheckedPeek(const Tensor& t) {
  return t.at(0);  // btlint: allow(hot-loop-at)
}

}  // namespace benchtemp::tensor::kernels
