// Fixture: bounds-checked element access inside the kernel layer. Both the
// Tensor-style `.at(` and a pointer-member `->at(` must trip hot-loop-at;
// the raw-pointer loop stays silent.
namespace benchtemp::tensor::kernels {

float SumAt(const Tensor& t, Tensor* u, long n) {
  float total = 0.0f;
  for (long i = 0; i < n; ++i) {
    total += t.at(i);
    total += u->at(i);
  }
  return total;
}

float SumRaw(const float* x, long n) {
  float total = 0.0f;
  for (long i = 0; i < n; ++i) total += x[i];
  return total;
}

}  // namespace benchtemp::tensor::kernels
