// Fixture: mutable-static suppression in the parallel core.
#include <cstdint>

namespace benchtemp::tensor {

// Guarded by a mutex elsewhere; documented exception.
// btlint: allow(mutable-static)
int64_t g_profiled_bytes = 0;

}  // namespace benchtemp::tensor
