// Fixture for adhoc-timing: scattered clock reads that bypass the
// observability layer. Expected findings: 3 (steady_clock::now,
// high_resolution_clock::now, gettimeofday); the chrono duration
// construction in Sleepy() must NOT fire.
#include <chrono>
#include <sys/time.h>
#include <thread>

namespace fixture {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long TickNs() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

double PosixNow() {
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  return static_cast<double>(tv.tv_sec) + 1e-6 * tv.tv_usec;
}

void Sleepy() {
  // Durations are fine — only clock *reads* are ad-hoc timing.
  // btlint: allow(adhoc-parallelism)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace fixture
