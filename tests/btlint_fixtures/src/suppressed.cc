// Fixture: every rule from the clean-suppression angle — one violation per
// rule, each silenced by a targeted allow comment. Expected finding count: 0.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "runtime/thread_pool.h"

namespace fixture {

int SameLineAllow() {
  return std::rand();  // btlint: allow(banned-random)
}

void OwnLineAllow() {
  // btlint: allow(adhoc-parallelism)
  std::thread worker([] {});
  worker.join();
}

double ReduceAllowed(const float* values, int64_t n) {
  double total = 0.0;
  benchtemp::runtime::ParallelFor(0, n, 256, [&](int64_t i) {
    total += values[i];  // btlint: allow(parallel-float-reduce)
  });
  return total;
}

double DrainAllowed(const std::unordered_map<int, double>& scores) {
  double total = 0.0;
  // btlint: allow(unordered-drain)
  for (const auto& entry : scores) total += entry.second;
  return total;
}

bool CompareAllowed(float a, float b) {
  return a == b;  // btlint: allow(float-equality)
}

int32_t NarrowAllowed(int64_t node_id) {
  // btlint: allow(id-narrowing)
  return static_cast<int32_t>(node_id);
}

int* NewAllowed() {
  // A wildcard allow also works.
  return new int(7);  // btlint: allow(*)
}

double TimingAllowed() {
  const auto now =
      std::chrono::steady_clock::now();  // btlint: allow(adhoc-timing)
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

void IoAllowed(std::FILE* f) {
  std::fclose(f);  // btlint: allow(unchecked-io)
}

}  // namespace fixture
