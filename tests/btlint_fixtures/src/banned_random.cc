// Fixture: every banned randomness source in one file.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int HiddenStateDraw() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return std::rand();
}

unsigned NondeterministicSeed() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
