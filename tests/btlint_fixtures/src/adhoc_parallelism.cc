// Fixture: pool-external parallelism inside src/.
#include <future>
#include <thread>

namespace fixture {

void SpawnThread() {
  std::thread worker([] {});
  worker.join();
}

int SpawnAsync() {
  auto f = std::async(std::launch::async, [] { return 1; });
  return f.get();
}

}  // namespace fixture
