// btlint: allow-file(missing-include-guard)
// Fixture: guardless header silenced by a file-level allow.
namespace fixture {

int StillUnguardedButAllowed();

}  // namespace fixture
