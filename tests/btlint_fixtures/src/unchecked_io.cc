// Fixture: unchecked-io — raw stdio/POSIX durability calls whose results
// are discarded at statement position. Expected findings: 4 (fwrite,
// fclose, rename, fsync); the checked/qualified/member uses are clean.
#include <cstdio>
#include <filesystem>
#include <system_error>

#include <unistd.h>

namespace fixture {

void IgnoredResults(std::FILE* f, int fd, const char* buf, size_t n) {
  std::fwrite(buf, 1, n, f);
  std::fclose(f);
  rename("ckpt.tmp", "ckpt");
  fsync(fd);
}

bool CheckedResults(std::FILE* f, int fd, const char* buf, size_t n) {
  if (std::fwrite(buf, 1, n, f) != n) return false;
  const bool flushed = fsync(fd) == 0;
  const int renamed = std::rename("ckpt.tmp", "ckpt");
  (void)std::fclose(f);
  return flushed && renamed == 0;
}

struct Journal {
  void rename(const char* to);
};

void MemberAndQualified(Journal& j, const char* a, const char* b) {
  namespace fs = std::filesystem;
  j.rename(a);  // member call: a different function, result may be void
  std::error_code ec;
  fs::rename(a, b, ec);  // non-std qualification reports through ec
}

}  // namespace fixture
