#include "base/a.h"
#include "base/b.h"
int Use() {
  A a;
  B b;
  a.peer = &b;
  b.peer = &a;
  return 0;
}
