#ifndef FIXTURE_B_H_
#define FIXTURE_B_H_
#include "base/a.h"
struct B {
  A* peer = nullptr;
};
#endif
