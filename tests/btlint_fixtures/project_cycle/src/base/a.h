#ifndef FIXTURE_A_H_
#define FIXTURE_A_H_
#include "base/b.h"  // expect: include-cycle (via b.h -> a.h)
struct A {
  B* peer = nullptr;
};
#endif
