#ifndef FIXTURE_STRING_UTIL_H_
#define FIXTURE_STRING_UTIL_H_
struct StringUtil {
  int width = 0;
};
#endif
