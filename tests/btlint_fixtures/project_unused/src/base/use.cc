#include "base/math_util.h"
#include "base/string_util.h"  // expect: unused-include
double Use() {
  MathUtil m;
  return m.scale;
}
