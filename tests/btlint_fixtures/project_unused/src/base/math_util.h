#ifndef FIXTURE_MATH_UTIL_H_
#define FIXTURE_MATH_UTIL_H_
struct MathUtil {
  double scale = 1.0;
};
#endif
