#include "base/wired.h"
int Use() {
  Wired w;
  return w.value;
}
