// expect: orphan-header — nothing in the tree includes this file.
#ifndef FIXTURE_DEAD_H_
#define FIXTURE_DEAD_H_
struct Dead {
  int value = 0;
};
#endif
