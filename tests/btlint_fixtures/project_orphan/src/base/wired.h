#ifndef FIXTURE_WIRED_H_
#define FIXTURE_WIRED_H_
struct Wired {
  int value = 0;
};
#endif
