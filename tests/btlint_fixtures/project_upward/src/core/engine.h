#ifndef FIXTURE_ENGINE_H_
#define FIXTURE_ENGINE_H_
struct Engine {
  int ticks = 0;
};
#endif
