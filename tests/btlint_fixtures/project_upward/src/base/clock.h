#ifndef FIXTURE_CLOCK_H_
#define FIXTURE_CLOCK_H_
#include "core/engine.h"  // expect: layering-violation (base -> core)
struct Clock {
  Engine engine;
};
#endif
