#include "base/clock.h"
int Use() {
  Clock c;
  return c.engine.ticks;
}
