#ifndef FIXTURE_VALUE_H_
#define FIXTURE_VALUE_H_
struct Value {
  int amount = 0;
};
#endif
