#include "core/sum.h"
int Sum(const Value& a, const Value& b) {
  return a.amount + b.amount;
}
