#ifndef FIXTURE_SUM_H_
#define FIXTURE_SUM_H_
#include "base/value.h"
int Sum(const Value& a, const Value& b);
#endif
