#include "graph/walks.h"

#include <cmath>

#include <gtest/gtest.h>

namespace benchtemp::graph {
namespace {

TemporalGraph MakeChain() {
  // 0-1@1, 1-2@2, 2-3@3, 3-4@4 ... a temporal path.
  TemporalGraph g;
  for (int i = 0; i < 8; ++i) {
    g.AddInteraction(i, i + 1, static_cast<double>(i + 1));
  }
  return g;
}

TEST(WalkTest, WalksMoveBackwardInTime) {
  TemporalGraph g = MakeChain();
  NeighborFinder finder(g);
  TemporalWalkSampler sampler(WalkBias::kUniform);
  tensor::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    TemporalWalk walk = sampler.SampleWalk(finder, 5, 10.0, 4, rng);
    ASSERT_GE(walk.size(), 1u);
    EXPECT_EQ(walk[0].node, 5);
    EXPECT_EQ(walk[0].edge_idx, -1);
    for (size_t s = 1; s < walk.size(); ++s) {
      EXPECT_LT(walk[s].ts, walk[s - 1].ts);
      EXPECT_GE(walk[s].edge_idx, 0);
    }
  }
}

TEST(WalkTest, WalkStopsWithoutHistory) {
  TemporalGraph g = MakeChain();
  NeighborFinder finder(g);
  TemporalWalkSampler sampler(WalkBias::kUniform);
  tensor::Rng rng(2);
  // Node 0 at t=0.5 has no history: walk is just the root.
  TemporalWalk walk = sampler.SampleWalk(finder, 0, 0.5, 4, rng);
  EXPECT_EQ(walk.size(), 1u);
}

TEST(WalkTest, SampleWalksCount) {
  TemporalGraph g = MakeChain();
  NeighborFinder finder(g);
  TemporalWalkSampler sampler(WalkBias::kExponential, 0.1);
  tensor::Rng rng(3);
  const auto walks = sampler.SampleWalks(finder, 5, 10.0, 7, 3, rng);
  EXPECT_EQ(walks.size(), 7u);
}

TEST(WalkTest, LinearSafeWeightsMatchPaperEq2) {
  TemporalWalkSampler sampler(WalkBias::kLinearSafe);
  // W = t'-t if t'>t; 1 if equal; -1/(t'-t) if t'<t. All strictly positive.
  EXPECT_DOUBLE_EQ(sampler.StepWeight(/*t_prev=*/7.0, /*t_now=*/4.0), 3.0);
  EXPECT_DOUBLE_EQ(sampler.StepWeight(4.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.StepWeight(2.0, 4.0), 0.5);
  EXPECT_GT(sampler.StepWeight(-1e9, 1e9), 0.0);
}

TEST(WalkTest, ExponentialWeightPrefersRecent) {
  TemporalWalkSampler sampler(WalkBias::kExponential, 1.0);
  EXPECT_GT(sampler.StepWeight(9.0, 10.0), sampler.StepWeight(1.0, 10.0));
}

TEST(WalkTest, ExponentialWeightUnderflowsOnCoarseGranularity) {
  // The failure mode the paper's Eq. (2)/(3) fixes: with huge raw time
  // gaps every candidate weight collapses to zero.
  TemporalWalkSampler sampler(WalkBias::kExponential, 1.0);
  EXPECT_DOUBLE_EQ(sampler.StepWeight(0.0, 1e6), 0.0);
  TemporalWalkSampler safe(WalkBias::kLinearSafe);
  EXPECT_GT(safe.StepWeight(0.0, 1e6), 0.0);
}

TEST(WalkTest, RecencyBiasObservable) {
  // Node 0 interacts with 1 early and with 2 late, many times each.
  TemporalGraph g;
  for (int i = 0; i < 10; ++i) g.AddInteraction(0, 1, 1.0 + 0.01 * i);
  for (int i = 0; i < 10; ++i) g.AddInteraction(0, 2, 9.0 + 0.01 * i);
  NeighborFinder finder(g);
  TemporalWalkSampler sampler(WalkBias::kExponential, 1.0);
  tensor::Rng rng(4);
  int recent = 0;
  for (int trial = 0; trial < 200; ++trial) {
    TemporalWalk walk = sampler.SampleWalk(finder, 0, 10.0, 1, rng);
    ASSERT_EQ(walk.size(), 2u);
    if (walk[1].node == 2) ++recent;
  }
  EXPECT_GT(recent, 170);  // overwhelmingly the recent partner
}

TEST(CawAnonymizerTest, EncodesPositionalCounts) {
  // Two walks from u: [5, 3], [5, 4]; one walk set reused for v.
  TemporalWalk w1 = {{5, 10.0, -1}, {3, 9.0, 0}};
  TemporalWalk w2 = {{5, 10.0, -1}, {4, 8.0, 1}};
  std::vector<TemporalWalk> walks_u = {w1, w2};
  TemporalWalk w3 = {{6, 10.0, -1}, {3, 7.0, 2}};
  std::vector<TemporalWalk> walks_v = {w3};
  CawAnonymizer anon(walks_u, walks_v, /*length=*/1);
  EXPECT_EQ(anon.feature_dim(), 4);
  // Node 5 appears at position 0 in both u-walks, never in v-walks.
  const auto f5 = anon.Encode(5);
  EXPECT_FLOAT_EQ(f5[0], 1.0f);   // 2/2 at position 0 of S_u
  EXPECT_FLOAT_EQ(f5[1], 0.0f);
  EXPECT_FLOAT_EQ(f5[2], 0.0f);
  EXPECT_FLOAT_EQ(f5[3], 0.0f);
  // Node 3 appears at position 1 in one of two u-walks and in the v-walk.
  const auto f3 = anon.Encode(3);
  EXPECT_FLOAT_EQ(f3[1], 0.5f);
  EXPECT_FLOAT_EQ(f3[3], 1.0f);
  // Unknown node encodes to all zeros.
  const auto f9 = anon.Encode(9);
  for (float x : f9) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(CawAnonymizerTest, AnonymizationHidesIdentity) {
  // Two isomorphic walk sets with different node ids produce identical
  // encodings for corresponding nodes — the motif property CAWN relies on.
  TemporalWalk a = {{1, 5.0, -1}, {2, 4.0, 0}};
  TemporalWalk b = {{7, 5.0, -1}, {8, 4.0, 0}};
  CawAnonymizer anon_a({a}, {a}, 1);
  CawAnonymizer anon_b({b}, {b}, 1);
  EXPECT_EQ(anon_a.Encode(1), anon_b.Encode(7));
  EXPECT_EQ(anon_a.Encode(2), anon_b.Encode(8));
}

}  // namespace
}  // namespace benchtemp::graph
