// Tests of the checked I/O shim (src/io), the deterministic retry policy,
// and the offline fsck pass — the plumbing under DESIGN.md "Failure model
// v2". Fault injection drives every simulated disk failure; each test
// leaves the process-wide injector disarmed.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "io/file.h"
#include "robustness/checkpoint.h"
#include "robustness/fsck.h"
#include "robustness/lineage.h"
#include "robustness/retry.h"

namespace benchtemp {
namespace {

namespace fs = std::filesystem;

using io::AtomicReplace;
using io::File;
using io::FileKind;
using io::ReadFileBytes;
using robustness::CheckpointLineage;
using base::FaultInjector;
using base::FaultSite;
using base::FaultSpec;
using robustness::FsckDirectory;
using robustness::FsckReport;
using robustness::JobCheckpoint;
using robustness::RetryPolicy;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

std::string TempPath(const std::string& name) {
  return "/tmp/benchtemp_io_" + name;
}

FaultSpec AtStep(int step, int count = 1) {
  FaultSpec spec;
  spec.at_step = step;
  spec.count = count;
  return spec;
}

// ---------------------------------------------------------------------------
// io::File basics

TEST_F(IoTest, WriteSyncCloseRoundTrip) {
  const std::string path = TempPath("roundtrip.bin");
  File f;
  ASSERT_TRUE(f.OpenWrite(path));
  EXPECT_TRUE(f.Write(std::string("hello ")));
  EXPECT_TRUE(f.Write("world", 5));
  EXPECT_TRUE(f.Sync());
  EXPECT_TRUE(f.Close());
  EXPECT_FALSE(f.is_open());

  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  EXPECT_EQ(bytes, "hello world");

  File append;
  ASSERT_TRUE(append.OpenAppend(path));
  EXPECT_TRUE(append.Write(std::string("!")));
  EXPECT_TRUE(append.Close());
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  EXPECT_EQ(bytes, "hello world!");
  unlink(path.c_str());
}

TEST_F(IoTest, OpenFailureIsReported) {
  File f;
  EXPECT_FALSE(f.OpenWrite("/nonexistent-dir-zzz/file.bin"));
  EXPECT_FALSE(f.is_open());
  std::string bytes;
  EXPECT_FALSE(ReadFileBytes("/nonexistent-dir-zzz/file.bin", &bytes));
}

TEST_F(IoTest, RemoveFileTreatsMissingAsSuccess) {
  const std::string path = TempPath("removable.bin");
  { std::ofstream out(path); out << "x"; }
  EXPECT_TRUE(io::RemoveFile(path));
  EXPECT_TRUE(io::RemoveFile(path));  // already gone
}

// ---------------------------------------------------------------------------
// Injected write failures latch and are observable at Close()

TEST_F(IoTest, ShortWriteLatchesFailure) {
  FaultInjector::Global().Arm(FaultSite::kShortWrite, AtStep(0));
  const std::string path = TempPath("short.bin");
  File f;
  ASSERT_TRUE(f.OpenWrite(path));
  EXPECT_FALSE(f.Write(std::string("0123456789")));
  EXPECT_FALSE(f.ok());
  // Latched: later writes are no-ops, Close reports the failure once.
  EXPECT_FALSE(f.Write(std::string("more")));
  EXPECT_FALSE(f.Close());
  unlink(path.c_str());
}

TEST_F(IoTest, EioOnWriteAndFsyncFail) {
  const std::string path = TempPath("eio.bin");
  {
    FaultInjector::Global().Arm(FaultSite::kEioWrite, AtStep(0));
    File f;
    ASSERT_TRUE(f.OpenWrite(path));
    EXPECT_FALSE(f.Write(std::string("payload")));
    EXPECT_FALSE(f.Close());
  }
  FaultInjector::Global().DisarmAll();
  {
    FaultInjector::Global().Arm(FaultSite::kEioFsync, AtStep(0));
    File f;
    ASSERT_TRUE(f.OpenWrite(path));
    EXPECT_TRUE(f.Write(std::string("payload")));
    EXPECT_FALSE(f.Sync());
    EXPECT_FALSE(f.Close());
  }
  unlink(path.c_str());
}

TEST_F(IoTest, EioManifestScopedToManifestKind) {
  FaultSpec spec = AtStep(0, 1 << 20);
  FaultInjector::Global().Arm(FaultSite::kEioManifest, spec);

  // Checkpoint-kind writes are untouched by the manifest fault site.
  const std::string ckpt = TempPath("scoped.ckpt");
  File a;
  ASSERT_TRUE(a.OpenWrite(ckpt, FileKind::kCheckpoint));
  EXPECT_TRUE(a.Write(std::string("checkpoint bytes")));
  EXPECT_TRUE(a.Close());

  const std::string manifest = TempPath("scoped.manifest");
  File b;
  ASSERT_TRUE(b.OpenAppend(manifest, FileKind::kManifest));
  EXPECT_FALSE(b.Write(std::string("journal line\n")));
  EXPECT_FALSE(b.Close());
  unlink(ckpt.c_str());
  unlink(manifest.c_str());
}

// ---------------------------------------------------------------------------
// AtomicReplace: torn and bit-flipped commits are silent by design

TEST_F(IoTest, TornCheckpointCommitsTruncatedBytesSilently) {
  const std::string path = TempPath("torn.ckpt");
  ASSERT_TRUE(AtomicReplace(path, "old generation", FileKind::kCheckpoint));

  FaultSpec spec = AtStep(0);  // Arm resets the probe clock
  spec.seed = 99;
  FaultInjector::Global().Arm(FaultSite::kTornCheckpoint, spec);
  const std::string intended(256, 'G');
  // Reports success: the whole point is that only a checksum catches it.
  EXPECT_TRUE(AtomicReplace(path, intended, FileKind::kCheckpoint));

  std::string committed;
  ASSERT_TRUE(ReadFileBytes(path, &committed));
  EXPECT_LT(committed.size(), intended.size());
  EXPECT_NE(robustness::Fnv1a64(committed), robustness::Fnv1a64(intended));
  unlink(path.c_str());
}

TEST_F(IoTest, BitflipCheckpointPreservesSizeButNotChecksum) {
  const std::string path = TempPath("bitflip.ckpt");
  FaultSpec spec = AtStep(0);
  spec.seed = 1234;
  FaultInjector::Global().Arm(FaultSite::kBitflipCheckpoint, spec);
  const std::string intended(256, 'G');
  EXPECT_TRUE(AtomicReplace(path, intended, FileKind::kCheckpoint));

  std::string committed;
  ASSERT_TRUE(ReadFileBytes(path, &committed));
  ASSERT_EQ(committed.size(), intended.size());
  EXPECT_NE(committed, intended);
  // Exactly one bit differs.
  int bit_diffs = 0;
  for (size_t i = 0; i < committed.size(); ++i) {
    unsigned char x = static_cast<unsigned char>(committed[i] ^ intended[i]);
    while (x != 0) {
      bit_diffs += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(bit_diffs, 1);
  unlink(path.c_str());
}

TEST_F(IoTest, GenericAndManifestKindsNeverProbeCheckpointCorruption) {
  FaultSpec spec = AtStep(0, 1 << 20);
  spec.seed = 7;
  FaultInjector::Global().Arm(FaultSite::kTornCheckpoint, spec);
  FaultInjector::Global().Arm(FaultSite::kBitflipCheckpoint, spec);

  const std::string path = TempPath("unscoped.txt");
  const std::string payload = "manifest payload\n";
  ASSERT_TRUE(AtomicReplace(path, payload, FileKind::kManifest));
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  EXPECT_EQ(bytes, payload);
  ASSERT_TRUE(AtomicReplace(path, payload, FileKind::kGeneric));
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  EXPECT_EQ(bytes, payload);
  unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// RetryPolicy: deterministic backoff, bounded attempts

TEST_F(IoTest, BackoffIsDeterministicBoundedAndSeeded) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 4;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 10;
  policy.seed = 42;

  std::vector<int64_t> first;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    const int64_t ms = policy.BackoffMs(attempt);
    EXPECT_GE(ms, 0);
    // Exponential base capped at max, plus jitter bounded by base.
    EXPECT_LE(ms, policy.max_backoff_ms + policy.base_backoff_ms);
    first.push_back(ms);
  }
  // Same policy, same schedule — replayable to the millisecond.
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    EXPECT_EQ(policy.BackoffMs(attempt),
              first[static_cast<size_t>(attempt - 1)]);
  }
  // A different seed shifts the jitter somewhere in the schedule.
  RetryPolicy reseeded = policy;
  reseeded.seed = 43;
  bool any_different = false;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    any_different =
        any_different ||
        reseeded.BackoffMs(attempt) != first[static_cast<size_t>(attempt - 1)];
  }
  EXPECT_TRUE(any_different);
}

TEST_F(IoTest, RunRetriesUntilSuccessAndGivesUp) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0;
  policy.max_backoff_ms = 0;

  int calls = 0;
  EXPECT_TRUE(policy.Run([&] { return ++calls == 3; }));
  EXPECT_EQ(calls, 3);

  calls = 0;
  EXPECT_FALSE(policy.Run([&] {
    ++calls;
    return false;
  }));
  EXPECT_EQ(calls, 3);
}

TEST_F(IoTest, RetryRidesOutTransientEioBurst) {
  // Two injected EIO hits, then the disk recovers: the policy's third
  // attempt lands the checkpoint.
  FaultInjector::Global().Arm(FaultSite::kEioWrite, AtStep(0, 2));
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0;
  policy.max_backoff_ms = 0;

  const std::string path = TempPath("transient.ckpt");
  const std::string payload = "generation payload";
  EXPECT_TRUE(policy.Run(
      [&] { return AtomicReplace(path, payload, FileKind::kCheckpoint); }));
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  EXPECT_EQ(bytes, payload);
  unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Offline fsck: detect, repair, refuse the unrecoverable

JobCheckpoint EpochCheckpoint(int epoch) {
  JobCheckpoint c;
  c.next_epoch = epoch;
  c.seed = 5;
  c.params = "params for epoch " + std::to_string(epoch);
  return c;
}

/// Fresh scratch directory holding one saved lineage of `generations`.
std::string MakeLineageDir(const std::string& name, int generations,
                           int max_generations = 3) {
  const std::string dir = TempPath("fsck_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  CheckpointLineage lineage(dir + "/job.ckpt", max_generations);
  for (int epoch = 1; epoch <= generations; ++epoch) {
    EXPECT_TRUE(lineage.Save(EpochCheckpoint(epoch)));
  }
  return dir;
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes));
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST_F(IoTest, FsckPassesACleanLineage) {
  const std::string dir = MakeLineageDir("clean", 3);
  const FsckReport report = FsckDirectory(dir, /*repair=*/false);
  EXPECT_EQ(report.lineages, 1);
  EXPECT_EQ(report.generations, 3);
  EXPECT_EQ(report.corrupt, 0);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.issues.empty());
  fs::remove_all(dir);
}

TEST_F(IoTest, FsckDetectsEveryInjectedCorruption) {
  const std::string dir = MakeLineageDir("detect", 3);
  CheckpointLineage lineage(dir + "/job.ckpt", 3);
  FlipByte(lineage.GenerationPath(2), 10);
  FlipByte(lineage.GenerationPath(3), 40);

  const FsckReport report = FsckDirectory(dir, /*repair=*/false);
  EXPECT_EQ(report.corrupt, 2);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.unrecoverable, 0);  // generation 1 still loads
  ASSERT_GE(report.issues.size(), 2u);
  // The report names the offending files.
  bool found_g2 = false;
  bool found_g3 = false;
  for (const auto& issue : report.issues) {
    found_g2 = found_g2 || issue.path == lineage.GenerationPath(2);
    found_g3 = found_g3 || issue.path == lineage.GenerationPath(3);
  }
  EXPECT_TRUE(found_g2);
  EXPECT_TRUE(found_g3);

  // The formatted report is what btfsck prints; spot-check its shape.
  const std::string text = robustness::FormatFsckReport(report);
  EXPECT_NE(text.find("corrupt: 2"), std::string::npos);
  EXPECT_NE(text.find("issue|"), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(IoTest, FsckRepairDropsCorruptAdoptsOrphansRewritesManifest) {
  const std::string dir = MakeLineageDir("repair", 2);
  CheckpointLineage lineage(dir + "/job.ckpt", 3);
  FlipByte(lineage.GenerationPath(2), 25);
  // Orphan from a crash between generation commit and manifest commit.
  ASSERT_TRUE(robustness::AtomicWriteFile(
      lineage.GenerationPath(5),
      robustness::SerializeJobCheckpoint(EpochCheckpoint(5))));
  // Stale tmp from a torn atomic replace.
  { std::ofstream out(lineage.GenerationPath(6) + ".tmp"); out << "junk"; }

  FsckReport report = FsckDirectory(dir, /*repair=*/true);
  EXPECT_EQ(report.corrupt, 1);
  EXPECT_EQ(report.orphans, 1);
  EXPECT_EQ(report.stale_tmps, 1);
  EXPECT_GT(report.repaired, 0);
  EXPECT_EQ(report.unrecoverable, 0);

  // Post-repair the directory verifies clean and the orphan is live.
  report = FsckDirectory(dir, /*repair=*/false);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.orphans, 0);
  EXPECT_EQ(report.stale_tmps, 0);
  JobCheckpoint loaded;
  const auto result = lineage.Load(&loaded);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.seq, 5u);
  EXPECT_EQ(loaded.next_epoch, 5);
  fs::remove_all(dir);
}

TEST_F(IoTest, FsckReportsUnrecoverableLineage) {
  const std::string dir = MakeLineageDir("dead", 2, 2);
  CheckpointLineage lineage(dir + "/job.ckpt", 2);
  FlipByte(lineage.GenerationPath(1), 12);
  FlipByte(lineage.GenerationPath(2), 12);

  const FsckReport report = FsckDirectory(dir, /*repair=*/false);
  EXPECT_EQ(report.unrecoverable, 1);
  EXPECT_FALSE(report.clean());

  // Repair refuses to touch it: every byte stays for the post-mortem.
  const FsckReport repaired = FsckDirectory(dir, /*repair=*/true);
  EXPECT_EQ(repaired.unrecoverable, 1);
  std::string unused;
  EXPECT_TRUE(ReadFileBytes(lineage.GenerationPath(1), &unused));
  EXPECT_TRUE(ReadFileBytes(lineage.GenerationPath(2), &unused));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace benchtemp
