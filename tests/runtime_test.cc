// Tests of the shared parallel runtime: chunk coverage, nested-call
// safety, exception propagation, and the determinism contract (identical
// MatMul / walk-sampling results at 1 vs N threads).

#include "runtime/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "graph/neighbor_finder.h"
#include "graph/walks.h"
#include "tensor/autograd.h"
#include "tensor/numeric.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace benchtemp {
namespace {

/// Restores the global pool size on scope exit so tests stay independent.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(int threads) {
    runtime::ThreadPool::Global().SetNumThreads(threads);
  }
  ~PoolSizeGuard() {
    runtime::ThreadPool::Global().SetNumThreads(
        runtime::DefaultNumThreads());
  }
};

TEST(ThreadPoolTest, CoversFullRangeExactlyOnce) {
  PoolSizeGuard guard(4);
  constexpr int64_t kRange = 10'000;
  std::vector<std::atomic<int>> hits(kRange);
  runtime::ParallelFor(0, kRange, /*grain=*/64,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i)
                           hits[static_cast<size_t>(i)].fetch_add(1);
                       });
  for (int64_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndSingleChunkRanges) {
  PoolSizeGuard guard(4);
  int calls = 0;
  runtime::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range that fits one chunk runs inline on the caller.
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(0, 10, 100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  PoolSizeGuard guard(4);
  std::vector<std::atomic<int>> hits(256);
  runtime::ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      // Nested ParallelFor from (potentially) a pool worker must not
      // deadlock; it executes serially on the current thread.
      runtime::ParallelFor(0, 16, 1, [&](int64_t ilo, int64_t ihi) {
        for (int64_t inner = ilo; inner < ihi; ++inner)
          hits[static_cast<size_t>(outer * 16 + inner)].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesChunkException) {
  PoolSizeGuard guard(4);
  EXPECT_THROW(
      runtime::ParallelFor(0, 1000, 1,
                           [&](int64_t lo, int64_t) {
                             if (lo == 500)
                               throw std::runtime_error("chunk 500 failed");
                           }),
      std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPoolTest, SetNumThreadsResizes) {
  PoolSizeGuard guard(1);
  EXPECT_EQ(runtime::ThreadPool::Global().num_threads(), 1);
  runtime::ThreadPool::Global().SetNumThreads(3);
  EXPECT_EQ(runtime::ThreadPool::Global().num_threads(), 3);
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(0, 1000, 10, [&](int64_t lo, int64_t hi) {
    sum.fetch_add(hi - lo);
  });
  EXPECT_EQ(sum.load(), 1000);
}

tensor::Tensor MatMulAt(int threads, const tensor::Tensor& a,
                        const tensor::Tensor& b, tensor::Tensor* grad_a,
                        tensor::Tensor* grad_b) {
  PoolSizeGuard guard(threads);
  tensor::Var va = tensor::Parameter(a);
  tensor::Var vb = tensor::Parameter(b);
  tensor::Var out = tensor::MatMul(va, vb);
  tensor::Backward(tensor::Sum(tensor::Sigmoid(out)));
  *grad_a = va->grad;
  *grad_b = vb->grad;
  return out->value;
}

TEST(DeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  tensor::Rng rng(11);
  const tensor::Tensor a = tensor::Tensor::Randn({67, 43}, rng);
  const tensor::Tensor b = tensor::Tensor::Randn({43, 29}, rng);
  tensor::Tensor ga1, gb1, gaN, gbN;
  const tensor::Tensor out1 = MatMulAt(1, a, b, &ga1, &gb1);
  const tensor::Tensor outN = MatMulAt(4, a, b, &gaN, &gbN);
  ASSERT_EQ(out1.size(), outN.size());
  for (int64_t i = 0; i < out1.size(); ++i) {
    ASSERT_EQ(out1.at(i), outN.at(i)) << "forward entry " << i;
  }
  ASSERT_EQ(ga1.size(), gaN.size());
  for (int64_t i = 0; i < ga1.size(); ++i) {
    ASSERT_EQ(ga1.at(i), gaN.at(i)) << "dA entry " << i;
  }
  ASSERT_EQ(gb1.size(), gbN.size());
  for (int64_t i = 0; i < gb1.size(); ++i) {
    ASSERT_EQ(gb1.at(i), gbN.at(i)) << "dB entry " << i;
  }
}

std::vector<std::vector<graph::TemporalWalk>> SampleAt(
    int threads, const graph::TemporalGraph& g,
    const graph::NeighborFinder& finder) {
  PoolSizeGuard guard(threads);
  graph::TemporalWalkSampler sampler(graph::WalkBias::kExponential, 1e-4);
  std::vector<int32_t> nodes;
  std::vector<double> ts;
  for (int32_t i = 0; i < 40; ++i) {
    nodes.push_back(i % tensor::NarrowId(g.num_nodes(), "test: node count"));
    ts.push_back(900.0 - i);
  }
  return sampler.SampleWalkBatch(finder, nodes, ts, /*count=*/5,
                                 /*length=*/3, /*seed=*/77);
}

TEST(DeterminismTest, WalkBatchIdenticalAcrossThreadCounts) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 40;
  cfg.num_edges = 2000;
  cfg.seed = 5;
  const graph::TemporalGraph g(datagen::Generate(cfg));
  const graph::NeighborFinder finder(g);
  const auto walks1 = SampleAt(1, g, finder);
  const auto walksN = SampleAt(4, g, finder);
  ASSERT_EQ(walks1.size(), walksN.size());
  for (size_t r = 0; r < walks1.size(); ++r) {
    ASSERT_EQ(walks1[r].size(), walksN[r].size()) << "root " << r;
    for (size_t w = 0; w < walks1[r].size(); ++w) {
      const graph::TemporalWalk& lhs = walks1[r][w];
      const graph::TemporalWalk& rhs = walksN[r][w];
      ASSERT_EQ(lhs.size(), rhs.size()) << "root " << r << " walk " << w;
      for (size_t s = 0; s < lhs.size(); ++s) {
        ASSERT_EQ(lhs[s].node, rhs[s].node);
        ASSERT_EQ(lhs[s].ts, rhs[s].ts);
        ASSERT_EQ(lhs[s].edge_idx, rhs[s].edge_idx);
      }
    }
  }
}

}  // namespace
}  // namespace benchtemp
