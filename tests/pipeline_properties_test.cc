// Second-wave property and regression tests: gradient flow through the
// memory-update path, trainer/state interactions, sampler determinism laws,
// the TeMP quantile knob, and leaderboard aggregation across settings.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/leaderboard.h"
#include "core/trainer.h"
#include "datagen/catalog.h"
#include "datagen/synthetic.h"
#include "graph/neighbor_finder.h"
#include "models/factory.h"
#include "models/memory_base.h"
#include "tensor/optimizer.h"

namespace benchtemp {
namespace {

using graph::NeighborFinder;
using graph::TemporalGraph;
using models::Batch;
using models::ModelKind;
using tensor::Var;

TemporalGraph SmallGraph(uint64_t seed = 5) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 15;
  cfg.num_edges = 500;
  cfg.edge_feature_dim = 4;
  cfg.seed = seed;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

models::ModelConfig TinyConfig() {
  models::ModelConfig config;
  config.embedding_dim = 8;
  config.time_dim = 8;
  config.num_neighbors = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  config.num_walks = 2;
  config.walk_length = 2;
  return config;
}

Batch BatchOf(const TemporalGraph& g, int64_t lo, int64_t hi) {
  Batch batch;
  for (int64_t i = lo; i < hi; ++i) {
    const auto& e = g.event(i);
    batch.srcs.push_back(e.src);
    batch.dsts.push_back(e.dst);
    batch.ts.push_back(e.ts);
    batch.edge_idxs.push_back(e.edge_idx);
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Memory gradient flow: the deferred-update scheme must deliver gradients
// to the updater (GRU) parameters through the *next* batch's scores.
// ---------------------------------------------------------------------------

class MemoryGradientTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(MemoryGradientTest, UpdaterReceivesGradients) {
  TemporalGraph g = SmallGraph();
  NeighborFinder finder(g);
  auto model = models::CreateModel(GetParam(), &g, TinyConfig(), 40);
  model->SetNeighborFinder(&finder);
  model->Reset();
  model->set_training(true);
  // Batch 1 becomes pending; scoring batch 2 applies its memory update
  // under autograd, so the loss must reach the updater parameters.
  model->UpdateState(BatchOf(g, 0, 60));
  Batch score = BatchOf(g, 60, 120);
  Var pos = model->ScoreEdges(score.srcs, score.dsts, score.ts);
  tensor::Tensor ones({pos->value.size()});
  ones.Fill(1.0f);
  Var loss = BceWithLogits(pos, ones);
  tensor::ZeroGrad(model->Parameters());
  Backward(loss);
  double grad_mass = 0.0;
  int64_t with_grad = 0;
  for (const Var& p : model->Parameters()) {
    if (p->grad.size() != p->value.size()) continue;
    ++with_grad;
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      grad_mass += std::fabs(p->grad.at(i));
    }
  }
  EXPECT_GT(with_grad, 0) << models::ModelKindName(GetParam());
  EXPECT_GT(grad_mass, 1e-6) << models::ModelKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    MemoryModels, MemoryGradientTest,
    ::testing::Values(ModelKind::kJodie, ModelKind::kDyRep, ModelKind::kTgn,
                      ModelKind::kNat, ModelKind::kTemp),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      std::string name = models::ModelKindName(info.param);
      return name == "TeMP" ? "TeMP_" : name;
    });

TEST(MemoryModelTest, EvalModeDoesNotBuildAutogradState) {
  TemporalGraph g = SmallGraph();
  NeighborFinder finder(g);
  auto model = models::CreateModel(ModelKind::kTgn, &g, TinyConfig(), 40);
  model->SetNeighborFinder(&finder);
  model->Reset();
  model->set_training(false);
  model->UpdateState(BatchOf(g, 0, 60));
  Batch score = BatchOf(g, 60, 120);
  Var pos = model->ScoreEdges(score.srcs, score.dsts, score.ts);
  // Eval-mode scores must not require gradients (constant inputs only would
  // still flag requires_grad because parameters participate, so check the
  // training flag semantics through grad buffers instead).
  tensor::ZeroGrad(model->Parameters());
  EXPECT_TRUE(std::isfinite(pos->value.at(0)));
}

TEST(MemoryModelTest, ReplayOrderIndependenceOfScoring) {
  // Scoring (read-only w.r.t. memory content) must not change the state
  // trajectory: two models fed the same stream, one with interleaved
  // scoring, end with identical memories.
  TemporalGraph g = SmallGraph();
  NeighborFinder finder(g);
  models::ModelConfig config = TinyConfig();
  auto a = models::CreateModel(ModelKind::kJodie, &g, config, 40);
  auto b = models::CreateModel(ModelKind::kJodie, &g, config, 40);
  a->SetNeighborFinder(&finder);
  b->SetNeighborFinder(&finder);
  a->Reset();
  b->Reset();
  for (int64_t step = 0; step < 4; ++step) {
    Batch batch = BatchOf(g, step * 50, (step + 1) * 50);
    // Model a scores before updating, model b only replays.
    (void)a->ScoreEdges(batch.srcs, batch.dsts, batch.ts);
    a->UpdateState(batch);
    b->UpdateState(batch);
  }
  std::vector<int32_t> nodes;
  for (int32_t n = 0; n < 20; ++n) nodes.push_back(n);
  std::vector<double> ts(nodes.size(), g.event(400).ts);
  Var ea = a->ComputeEmbeddings(nodes, ts);
  Var eb = b->ComputeEmbeddings(nodes, ts);
  for (int64_t i = 0; i < ea->value.size(); ++i) {
    EXPECT_NEAR(ea->value.at(i), eb->value.at(i), 1e-5f);
  }
}

// ---------------------------------------------------------------------------
// TeMP quantile knob.
// ---------------------------------------------------------------------------

TEST(TempQuantileTest, QuantileChangesEmbeddings) {
  TemporalGraph g = SmallGraph();
  NeighborFinder finder(g);
  models::ModelConfig mean_config = TinyConfig();
  models::ModelConfig recent_config = TinyConfig();
  recent_config.temp_reference_quantile = 1.0;
  auto mean_model =
      models::CreateModel(ModelKind::kTemp, &g, mean_config, 40);
  auto recent_model =
      models::CreateModel(ModelKind::kTemp, &g, recent_config, 40);
  for (auto* model : {mean_model.get(), recent_model.get()}) {
    model->SetNeighborFinder(&finder);
    model->Reset();
    model->UpdateState(BatchOf(g, 0, 300));
  }
  std::vector<int32_t> nodes = {0, 1, 2, 3};
  std::vector<double> ts(4, g.event(450).ts);
  Var em = mean_model->ComputeEmbeddings(nodes, ts);
  Var er = recent_model->ComputeEmbeddings(nodes, ts);
  float diff = 0.0f;
  for (int64_t i = 0; i < em->value.size(); ++i) {
    diff += std::fabs(em->value.at(i) - er->value.at(i));
  }
  // Same parameters (same seed), different subgraph selection -> different
  // embeddings.
  EXPECT_GT(diff, 1e-5f);
}

// ---------------------------------------------------------------------------
// Sampler laws across the catalog.
// ---------------------------------------------------------------------------

class SamplerLawTest
    : public ::testing::TestWithParam<core::NegativeSampling> {};

TEST_P(SamplerLawTest, StreamsAreSeedStableAndInRange) {
  TemporalGraph g = SmallGraph();
  core::LinkPredictionSplit split =
      core::SplitLinkPrediction(g, core::SplitConfig());
  auto s1 = core::MakeEdgeSampler(GetParam(), g, split.train_events, 40,
                                  g.num_nodes(), 99);
  auto s2 = core::MakeEdgeSampler(GetParam(), g, split.train_events, 40,
                                  g.num_nodes(), 99);
  std::vector<int32_t> srcs, dsts;
  for (int64_t i : split.test_events) {
    srcs.push_back(g.event(i).src);
    dsts.push_back(g.event(i).dst);
  }
  const auto a = s1->SampleNegatives(srcs, dsts);
  const auto b = s2->SampleNegatives(srcs, dsts);
  EXPECT_EQ(a, b);  // same seed, same stream
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 0);
    EXPECT_LT(a[i], g.num_nodes());
    EXPECT_NE(a[i], dsts[i]);  // collision-free vs the positive
  }
  // Reset rewinds.
  s1->Reset();
  EXPECT_EQ(s1->SampleNegatives(srcs, dsts), a);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SamplerLawTest,
    ::testing::Values(core::NegativeSampling::kRandom,
                      core::NegativeSampling::kHistorical,
                      core::NegativeSampling::kInductive),
    [](const ::testing::TestParamInfo<core::NegativeSampling>& info) {
      return core::NegativeSamplingName(info.param);
    });

// ---------------------------------------------------------------------------
// Trainer regression behaviours.
// ---------------------------------------------------------------------------

TEST(TrainerRegressionTest, InductiveSubsetsOnlyContainUnseenEdges) {
  TemporalGraph g = SmallGraph(11);
  core::LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 40;
  job.kind = ModelKind::kEdgeBank;
  job.model_config = TinyConfig();
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  // Counts are consistent: transductive >= inductive = new_old + new_new.
  EXPECT_GE(result.test[0].count, result.test[1].count);
  EXPECT_EQ(result.test[1].count,
            result.test[2].count + result.test[3].count);
}

TEST(TrainerRegressionTest, WalkModelsRunNodeClassification) {
  // The paper emphasizes implementing NC for CAWN/NeurTW/NAT, which the
  // original releases lack; the pipeline must run them end to end.
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 15;
  cfg.num_edges = 400;
  cfg.label_classes = 2;
  cfg.label_positive_rate = 0.2;
  cfg.seed = 44;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  for (ModelKind kind :
       {ModelKind::kCawn, ModelKind::kNeurTw, ModelKind::kNat}) {
    core::NodeClassificationJob job;
    job.graph = &g;
    job.num_users = 40;
    job.kind = kind;
    job.model_config = TinyConfig();
    job.train_config.max_epochs = 1;
    job.train_config.batch_size = 100;
    job.pretrain_epochs = 1;
    job.decoder_epochs = 10;
    const core::NodeClassificationResult result =
        core::RunNodeClassification(job);
    EXPECT_EQ(result.status, models::ModelStatus::kOk)
        << models::ModelKindName(kind);
    EXPECT_GE(result.test_auc, 0.0);
    EXPECT_LE(result.test_auc, 1.0);
  }
}

TEST(TrainerRegressionTest, TimeBudgetAnnotatesNonConvergence) {
  TemporalGraph g = SmallGraph(13);
  core::LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 40;
  job.kind = ModelKind::kTgn;
  job.model_config = TinyConfig();
  job.train_config.max_epochs = 50;
  job.train_config.batch_size = 100;
  job.train_config.time_budget_seconds = 1e-6;  // expire immediately
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  // One epoch ran, the budget tripped before convergence -> "x".
  EXPECT_EQ(result.annotation, "x");
  EXPECT_EQ(result.efficiency.epochs_run, 1);
}

TEST(TrainerRegressionTest, EfficiencyFieldsPopulated) {
  TemporalGraph g = SmallGraph(14);
  core::LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 40;
  job.kind = ModelKind::kNat;
  job.model_config = TinyConfig();
  job.train_config.max_epochs = 2;
  job.train_config.batch_size = 100;
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  EXPECT_GT(result.efficiency.seconds_per_epoch, 0.0);
  EXPECT_GT(result.efficiency.train_events_per_second, 0.0);
  EXPECT_GT(result.efficiency.inference_seconds_per_100k, 0.0);
  EXPECT_GT(result.efficiency.state_bytes, 0);
  EXPECT_GT(result.efficiency.parameter_bytes, 0);
}

// ---------------------------------------------------------------------------
// Leaderboard across settings (regression for the bench harness use).
// ---------------------------------------------------------------------------

TEST(LeaderboardSettingsTest, SettingsAreIndependentCells) {
  core::Leaderboard board;
  for (const char* setting : {"Transductive", "Inductive"}) {
    for (const char* model : {"A", "B"}) {
      core::LeaderboardRecord r;
      r.model = model;
      r.dataset = "D";
      r.task = "link_prediction";
      r.setting = setting;
      r.metric = "AUC";
      r.mean = (std::string(model) == "A") ==
                       (std::string(setting) == "Transductive")
                   ? 0.9
                   : 0.6;
      board.Add(r);
    }
  }
  EXPECT_EQ(board.Rank("A", "D", "link_prediction", "Transductive", "AUC"),
            1);
  EXPECT_EQ(board.Rank("A", "D", "link_prediction", "Inductive", "AUC"), 2);
}

}  // namespace
}  // namespace benchtemp
