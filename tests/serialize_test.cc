#include "tensor/serialize.h"

#include <unistd.h>

#include <fstream>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "graph/neighbor_finder.h"
#include "models/factory.h"
#include "tensor/modules.h"

namespace benchtemp::tensor {
namespace {

TEST(SerializeTest, RoundTripRestoresValues) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  const std::string path = "/tmp/benchtemp_ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path));
  // Perturb, then restore.
  std::vector<float> original;
  for (const Var& p : layer.Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) {
      original.push_back(p->value.at(i));
      p->value.at(i) += 1.5f;
    }
  }
  ASSERT_TRUE(LoadParameters(path, layer.Parameters()));
  size_t cursor = 0;
  for (const Var& p : layer.Parameters()) {
    for (int64_t i = 0; i < p->value.size(); ++i) {
      EXPECT_FLOAT_EQ(p->value.at(i), original[cursor++]);
    }
  }
  unlink(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejectedAtomically) {
  Rng rng(2);
  Linear small(4, 3, rng);
  Linear big(8, 3, rng);
  const std::string path = "/tmp/benchtemp_ckpt_mismatch.bin";
  ASSERT_TRUE(SaveParameters(small.Parameters(), path));
  const float before = big.Parameters()[0]->value.at(0);
  EXPECT_FALSE(LoadParameters(path, big.Parameters()));
  EXPECT_FLOAT_EQ(big.Parameters()[0]->value.at(0), before);  // untouched
  unlink(path.c_str());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(3);
  Linear layer(4, 3, rng);
  Linear no_bias(4, 3, rng, /*bias=*/false);
  const std::string path = "/tmp/benchtemp_ckpt_count.bin";
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path));
  EXPECT_FALSE(LoadParameters(path, no_bias.Parameters()));
  unlink(path.c_str());
}

TEST(SerializeTest, MissingAndCorruptFilesRejected) {
  Rng rng(4);
  Linear layer(4, 3, rng);
  EXPECT_FALSE(LoadParameters("/tmp/benchtemp_missing_ckpt.bin",
                              layer.Parameters()));
  const std::string path = "/tmp/benchtemp_ckpt_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_FALSE(LoadParameters(path, layer.Parameters()));
  unlink(path.c_str());
}

TEST(SerializeTest, TrainedModelReproducesScores) {
  // Save a model's parameters, rebuild a fresh model from the same config,
  // load, and verify identical scores on identical state — checkpointing a
  // whole TGNN.
  datagen::SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 10;
  cfg.num_edges = 300;
  cfg.seed = 8;
  graph::TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  graph::NeighborFinder finder(g);
  models::ModelConfig mc;
  mc.embedding_dim = 8;
  mc.time_dim = 8;
  mc.num_neighbors = 4;
  mc.num_layers = 1;
  mc.seed = 5;

  auto a = models::CreateModel(models::ModelKind::kTgn, &g, mc, 30);
  auto b = models::CreateModel(models::ModelKind::kTgn, &g, mc, 30);
  a->SetNeighborFinder(&finder);
  b->SetNeighborFinder(&finder);
  const std::string path = "/tmp/benchtemp_ckpt_model.bin";
  ASSERT_TRUE(SaveParameters(a->Parameters(), path));
  // Wreck b's parameters, then restore them from a's checkpoint. (The two
  // models share the config seed so their neighbor-sampling streams align;
  // only the parameter values are under test.)
  for (const Var& p : b->Parameters()) p->value.Fill(0.123f);
  ASSERT_TRUE(LoadParameters(path, b->Parameters()));

  models::Batch batch;
  for (int64_t i = 0; i < 50; ++i) {
    const auto& e = g.event(i);
    batch.srcs.push_back(e.src);
    batch.dsts.push_back(e.dst);
    batch.ts.push_back(e.ts);
    batch.edge_idxs.push_back(e.edge_idx);
  }
  a->Reset();
  b->Reset();
  a->UpdateState(batch);
  b->UpdateState(batch);
  std::vector<int32_t> srcs = {0, 1};
  std::vector<int32_t> dsts = {31, 32};
  std::vector<double> ts = {g.event(299).ts, g.event(299).ts};
  Var sa = a->ScoreEdges(srcs, dsts, ts);
  Var sb = b->ScoreEdges(srcs, dsts, ts);
  for (int64_t i = 0; i < sa->value.size(); ++i) {
    // TGN's neighbor sampling consumes its own rng; with identical configs
    // and identical call sequences the draws align.
    EXPECT_NEAR(sa->value.at(i), sb->value.at(i), 1e-4f);
  }
  unlink(path.c_str());
}

}  // namespace
}  // namespace benchtemp::tensor
