#include "datagen/synthetic.h"

#include <unistd.h>

#include <set>

#include <gtest/gtest.h>

#include "datagen/catalog.h"
#include "datagen/csv.h"

namespace benchtemp::datagen {
namespace {

TEST(SyntheticTest, GeneratesRequestedSize) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 20;
  cfg.num_edges = 500;
  auto g = Generate(cfg);
  EXPECT_GE(g.num_events(), 500);
  EXPECT_EQ(g.num_nodes(), 70);
  EXPECT_TRUE(g.IsChronological());
  EXPECT_EQ(g.edge_features().rows(), g.num_events());
}

TEST(SyntheticTest, BipartiteRespectsSides) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 10;
  cfg.num_edges = 400;
  auto g = Generate(cfg);
  for (const auto& e : g.events()) {
    EXPECT_LT(e.src, 30);
    EXPECT_GE(e.dst, 30);
    EXPECT_LT(e.dst, 40);
  }
}

TEST(SyntheticTest, HomogeneousNoSelfLoops) {
  SyntheticConfig cfg;
  cfg.num_users = 25;
  cfg.num_items = 0;
  cfg.num_edges = 400;
  auto g = Generate(cfg);
  for (const auto& e : g.events()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.dst, 25);
  }
}

TEST(SyntheticTest, Deterministic) {
  SyntheticConfig cfg;
  cfg.num_edges = 300;
  cfg.seed = 99;
  auto a = Generate(cfg);
  auto b = Generate(cfg);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (int64_t i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.event(i).src, b.event(i).src);
    EXPECT_EQ(a.event(i).dst, b.event(i).dst);
    EXPECT_DOUBLE_EQ(a.event(i).ts, b.event(i).ts);
  }
}

TEST(SyntheticTest, ReuseKnobControlsRepeatEdges) {
  SyntheticConfig low;
  low.num_users = 200;
  low.num_items = 200;
  low.num_edges = 2000;
  low.edge_reuse_prob = 0.0;
  low.zipf_src = 0.0;
  low.zipf_dst = 0.0;
  SyntheticConfig high = low;
  high.edge_reuse_prob = 0.9;
  const double low_reuse = Generate(low).ComputeStats().edge_reuse_ratio;
  const double high_reuse = Generate(high).ComputeStats().edge_reuse_ratio;
  EXPECT_GT(high_reuse, low_reuse + 0.3);
}

TEST(SyntheticTest, GranularityControlsDistinctTimestamps) {
  SyntheticConfig coarse;
  coarse.num_edges = 2000;
  coarse.time_granularity = 12;
  coarse.time_span = 12.0;
  const auto stats = Generate(coarse).ComputeStats();
  EXPECT_LE(stats.distinct_timestamps, 13);
}

TEST(SyntheticTest, BinaryLabelsRareAndMonotone) {
  SyntheticConfig cfg;
  cfg.num_edges = 2000;
  cfg.label_classes = 2;
  cfg.label_positive_rate = 0.05;
  auto g = Generate(cfg);
  int64_t positives = 0;
  // Once a source turns positive it stays positive (ban semantics).
  std::set<int32_t> banned;
  for (const auto& e : g.events()) {
    ASSERT_GE(e.label, 0);
    if (e.label == 1) {
      positives++;
      banned.insert(e.src);
    } else {
      EXPECT_EQ(banned.count(e.src), 0u) << "label flipped back";
    }
  }
  EXPECT_GT(positives, 0);
  EXPECT_LT(positives, g.num_events() / 4);  // imbalanced, like the paper
}

TEST(SyntheticTest, MultiClassLabels) {
  SyntheticConfig cfg;
  cfg.num_edges = 2000;
  cfg.label_classes = 4;
  cfg.label_positive_rate = 0.1;
  auto g = Generate(cfg);
  EXPECT_EQ(g.NumLabelClasses(), 4);
}

TEST(CatalogTest, FifteenMainAndSixNewDatasets) {
  EXPECT_EQ(MainDatasets().size(), 15u);
  EXPECT_EQ(NewDatasets().size(), 6u);
}

TEST(CatalogTest, LookupAndPaperStats) {
  const DatasetSpec* reddit = FindDataset("Reddit");
  ASSERT_NE(reddit, nullptr);
  EXPECT_TRUE(reddit->paper.heterogeneous);
  EXPECT_EQ(reddit->paper.num_edges, 672447);
  EXPECT_TRUE(reddit->node_classification);
  const DatasetSpec* untrade = FindDataset("UNTrade");
  ASSERT_NE(untrade, nullptr);
  EXPECT_GT(untrade->tgat_time_window, 0.0);  // reproduces the "*" failure
  EXPECT_TRUE(untrade->coarse_granularity);
  EXPECT_EQ(FindDataset("NoSuchDataset"), nullptr);
}

TEST(CatalogTest, NodeClassificationDatasetsHaveLabels) {
  for (const auto& spec : MainDatasets()) {
    auto g = LoadDataset(spec);
    EXPECT_EQ(g.HasLabels(), spec.node_classification) << spec.name;
    EXPECT_TRUE(g.IsChronological()) << spec.name;
    EXPECT_GT(g.num_events(), 1000) << spec.name;
  }
}

TEST(CatalogTest, CoarseDatasetsHaveFewTimestamps) {
  const DatasetSpec* canparl = FindDataset("CanParl");
  ASSERT_NE(canparl, nullptr);
  const auto stats = LoadDataset(*canparl).ComputeStats();
  EXPECT_LE(stats.distinct_timestamps, canparl->config.time_granularity + 1);
  const DatasetSpec* socialevo = FindDataset("SocialEvo");
  const auto fine = LoadDataset(*socialevo).ComputeStats();
  EXPECT_GT(fine.distinct_timestamps, stats.distinct_timestamps * 10);
}

TEST(CsvTest, RoundTrip) {
  SyntheticConfig cfg;
  cfg.num_edges = 200;
  cfg.edge_feature_dim = 3;
  cfg.label_classes = 2;
  cfg.label_positive_rate = 0.2;
  auto g = Generate(cfg);
  const std::string path = "/tmp/benchtemp_csv_test.csv";
  ASSERT_TRUE(SaveCsv(g, path));
  graph::TemporalGraph loaded;
  ASSERT_TRUE(LoadCsv(path, &loaded));
  ASSERT_EQ(loaded.num_events(), g.num_events());
  for (int64_t i = 0; i < g.num_events(); ++i) {
    EXPECT_EQ(loaded.event(i).src, g.event(i).src);
    EXPECT_EQ(loaded.event(i).dst, g.event(i).dst);
    EXPECT_EQ(loaded.event(i).label, g.event(i).label);
    EXPECT_NEAR(loaded.event(i).ts, g.event(i).ts, 1e-6);
  }
  EXPECT_EQ(loaded.edge_feature_dim(), 3);
  unlink(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  graph::TemporalGraph g;
  EXPECT_FALSE(LoadCsv("/tmp/definitely_missing_benchtemp.csv", &g));
}

}  // namespace
}  // namespace benchtemp::datagen
