#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/data_loader.h"
#include "core/early_stop.h"
#include "core/edge_sampler.h"
#include "core/evaluator.h"
#include "core/leaderboard.h"
#include "core/reindex.h"
#include "datagen/catalog.h"

namespace benchtemp::core {
namespace {

using graph::TemporalGraph;

// ---------------------------------------------------------------------------
// Reindexing (Section 3.1 / Fig. 3).
// ---------------------------------------------------------------------------

TEST(ReindexTest, HeterogeneousCompactsAndSeparatesSides) {
  // Sparse ids with a big gap, as in raw Taobao.
  TemporalGraph g;
  g.AddInteraction(1000, 5000, 1.0);
  g.AddInteraction(2000, 5000, 2.0);
  g.AddInteraction(1000, 7000, 3.0);
  ReindexResult result = ReindexHeterogeneous(g);
  EXPECT_EQ(result.num_users, 2);
  EXPECT_EQ(result.graph.num_nodes(), 4);  // 2 users + 2 items
  for (const auto& e : result.graph.events()) {
    EXPECT_LT(e.src, result.num_users);
    EXPECT_GE(e.dst, result.num_users);
  }
  // The feature-matrix shrink the paper reports for Taobao: id space went
  // from 7001 to 4.
  EXPECT_EQ(result.mapping.size(), 7001u);
}

TEST(ReindexTest, HomogeneousJointRange) {
  TemporalGraph g;
  g.AddInteraction(500, 900, 1.0);
  g.AddInteraction(900, 500, 2.0);
  g.AddInteraction(100, 900, 3.0);
  ReindexResult result = ReindexHomogeneous(g);
  EXPECT_EQ(result.graph.num_nodes(), 3);
  std::set<int32_t> ids;
  for (const auto& e : result.graph.events()) {
    ids.insert(e.src);
    ids.insert(e.dst);
  }
  EXPECT_EQ(ids, (std::set<int32_t>{0, 1, 2}));
}

TEST(ReindexTest, PreservesOrderAndLabels) {
  TemporalGraph g;
  g.AddInteraction(10, 20, 1.0, 1);
  g.AddInteraction(30, 20, 2.0, 0);
  ReindexResult result = ReindexHomogeneous(g);
  EXPECT_DOUBLE_EQ(result.graph.event(0).ts, 1.0);
  EXPECT_EQ(result.graph.event(0).label, 1);
  EXPECT_EQ(result.graph.event(1).label, 0);
}

TEST(ReindexTest, BuildBenchmarkInitializesFeatures) {
  TemporalGraph g;
  g.AddInteraction(3, 9, 1.0);
  ReindexResult result = BuildBenchmarkDataset(g, /*heterogeneous=*/true,
                                               /*feature_dim=*/172);
  EXPECT_EQ(result.graph.node_feature_dim(), 172);
  EXPECT_EQ(result.graph.node_features().rows(), 2);
}

// ---------------------------------------------------------------------------
// DataLoader split invariants, property-checked across the whole catalog.
// ---------------------------------------------------------------------------

class SplitPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SplitPropertyTest, Invariants) {
  const datagen::DatasetSpec* spec = datagen::FindDataset(GetParam());
  ASSERT_NE(spec, nullptr);
  TemporalGraph g = datagen::LoadDataset(*spec);
  SplitConfig config;
  LinkPredictionSplit split = SplitLinkPrediction(g, config);

  // Window boundaries: chronological 70/15/15.
  EXPECT_NEAR(static_cast<double>(split.train_end) / g.num_events(), 0.70,
              0.02);
  EXPECT_NEAR(static_cast<double>(split.val_end) / g.num_events(), 0.85,
              0.02);

  auto unseen = [&](int32_t node) {
    return split.is_unseen[static_cast<size_t>(node)] != 0;
  };
  // No training edge touches an unseen node; all are inside the window.
  for (int64_t i : split.train_events) {
    EXPECT_LT(i, split.train_end);
    EXPECT_FALSE(unseen(g.event(i).src));
    EXPECT_FALSE(unseen(g.event(i).dst));
  }
  // Transductive test = whole test window.
  EXPECT_EQ(static_cast<int64_t>(split.test_events.size()),
            g.num_events() - split.val_end);

  // Filtration laws: NewOld ∪ NewNew == Inductive, disjoint.
  std::set<int64_t> new_old(split.test_new_old.begin(),
                            split.test_new_old.end());
  std::set<int64_t> new_new(split.test_new_new.begin(),
                            split.test_new_new.end());
  std::set<int64_t> inductive(split.test_inductive.begin(),
                              split.test_inductive.end());
  std::set<int64_t> unioned = new_old;
  unioned.insert(new_new.begin(), new_new.end());
  EXPECT_EQ(unioned, inductive);
  for (int64_t i : new_old) EXPECT_EQ(new_new.count(i), 0u);

  // Membership rules per event.
  for (int64_t i : split.test_inductive) {
    const auto& e = g.event(i);
    EXPECT_TRUE(unseen(e.src) || unseen(e.dst));
  }
  for (int64_t i : split.test_new_new) {
    const auto& e = g.event(i);
    EXPECT_TRUE(unseen(e.src) && unseen(e.dst));
  }
  for (int64_t i : split.test_new_old) {
    const auto& e = g.event(i);
    EXPECT_NE(unseen(e.src), unseen(e.dst));
  }

  // Some nodes were actually masked and appear in the test stream.
  EXPECT_GT(split.num_unseen_nodes, 0);
  EXPECT_FALSE(split.test_inductive.empty());

  // Same seed -> same split.
  LinkPredictionSplit again = SplitLinkPrediction(g, config);
  EXPECT_EQ(again.train_events, split.train_events);
  EXPECT_EQ(again.test_new_new, split.test_new_new);
}

INSTANTIATE_TEST_SUITE_P(
    AllMainDatasets, SplitPropertyTest,
    ::testing::Values("Reddit", "Wikipedia", "MOOC", "LastFM", "Taobao",
                      "Enron", "SocialEvo", "UCI", "CollegeMsg", "CanParl",
                      "Contact", "Flights", "UNTrade", "USLegis", "UNVote"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(DataLoaderTest, NodeClassificationSplitCoversStream) {
  TemporalGraph g = datagen::LoadDataset(*datagen::FindDataset("MOOC"));
  NodeClassificationSplit split = SplitNodeClassification(g, SplitConfig());
  EXPECT_EQ(static_cast<int64_t>(split.train_events.size() +
                                 split.val_events.size() +
                                 split.test_events.size()),
            g.num_events());
  // Chronological: max(train) < min(val) < ... .
  EXPECT_LT(split.train_events.back(), split.val_events.front());
  EXPECT_LT(split.val_events.back(), split.test_events.front());
}

TEST(DataLoaderTest, SetStats) {
  TemporalGraph g;
  g.AddInteraction(0, 1, 1.0);
  g.AddInteraction(1, 2, 2.0);
  const SetStats stats = ComputeSetStats(g, {0, 1});
  EXPECT_EQ(stats.num_nodes, 3);
  EXPECT_EQ(stats.num_edges, 2);
}

// ---------------------------------------------------------------------------
// EdgeSampler.
// ---------------------------------------------------------------------------

TEST(EdgeSamplerTest, RandomSamplerRangeAndReset) {
  RandomEdgeSampler sampler(10, 20, 7);
  std::vector<int32_t> srcs(100, 0);
  std::vector<int32_t> positives(100, 15);
  const auto first = sampler.SampleNegatives(srcs, positives);
  for (int32_t d : first) {
    EXPECT_GE(d, 10);
    EXPECT_LT(d, 20);
    EXPECT_NE(d, 15);  // collision-free vs the positive
  }
  sampler.Reset();
  // fixed-seed streams
  EXPECT_EQ(sampler.SampleNegatives(srcs, positives), first);
}

TEST(EdgeSamplerTest, HistoricalSamplesTrainDestinations) {
  TemporalGraph g;
  g.AddInteraction(0, 5, 1.0);
  g.AddInteraction(0, 6, 2.0);
  g.AddInteraction(1, 7, 3.0);
  g.AddInteraction(2, 8, 4.0);  // not in train
  HistoricalEdgeSampler sampler(g, {0, 1, 2}, 5, 9, 3);
  std::vector<int32_t> srcs = {0, 0, 0, 0, 1};
  std::vector<int32_t> positives(5, 8);  // outside every source's history
  for (int trial = 0; trial < 20; ++trial) {
    const auto negatives = sampler.SampleNegatives(srcs, positives);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(negatives[i] == 5 || negatives[i] == 6);
    }
    EXPECT_EQ(negatives[4], 7);
  }
}

TEST(EdgeSamplerTest, HistoricalFallsBackToRandom) {
  TemporalGraph g;
  g.AddInteraction(0, 5, 1.0);
  g.AddInteraction(3, 6, 1.5);
  HistoricalEdgeSampler sampler(g, {0}, 5, 7, 3);
  // Source 3 has no training history -> uniform fallback stays in range
  // and avoids the positive (6), so only 5 remains.
  const auto negatives = sampler.SampleNegatives({3, 3, 3}, {6, 6, 6});
  for (int32_t d : negatives) {
    EXPECT_EQ(d, 5);
  }
}

TEST(EdgeSamplerTest, InductiveSamplesUnseenEdgesOnly) {
  TemporalGraph g;
  g.AddInteraction(0, 5, 1.0);  // train
  g.AddInteraction(1, 6, 2.0);  // train
  g.AddInteraction(0, 7, 3.0);  // test-only pair -> dst 7 eligible
  g.AddInteraction(2, 8, 4.0);  // test-only pair -> dst 8 eligible
  InductiveEdgeSampler sampler(g, {0, 1}, 5, 9, 3);
  for (int trial = 0; trial < 30; ++trial) {
    for (int32_t d : sampler.SampleNegatives({0, 1, 2}, {5, 6, 5})) {
      EXPECT_TRUE(d == 7 || d == 8);
    }
  }
}

TEST(EdgeSamplerTest, FactoryCoversAllModes) {
  TemporalGraph g;
  g.AddInteraction(0, 1, 1.0);
  for (NegativeSampling mode :
       {NegativeSampling::kRandom, NegativeSampling::kHistorical,
        NegativeSampling::kInductive}) {
    auto sampler = MakeEdgeSampler(mode, g, {0}, 0, 2, 1);
    ASSERT_NE(sampler, nullptr) << NegativeSamplingName(mode);
    EXPECT_EQ(sampler->SampleNegatives({0}, {1}).size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Evaluator.
// ---------------------------------------------------------------------------

TEST(EvaluatorTest, PerfectAndInvertedAuc) {
  std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
  std::vector<int> inverted = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, inverted), 0.0);
}

TEST(EvaluatorTest, AucInvariantToMonotoneTransform) {
  std::vector<double> scores = {0.1, 0.4, 0.35, 0.8, 0.05, 0.6};
  std::vector<int> labels = {0, 1, 0, 1, 0, 1};
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(100.0 * s + 5.0);
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), RocAuc(transformed, labels));
}

TEST(EvaluatorTest, AucTiesGetHalfCredit) {
  std::vector<double> scores = {0.5, 0.5};
  std::vector<int> labels = {1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(EvaluatorTest, AucDegenerateInputs) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2}, {0, 0}), 0.5);
}

TEST(EvaluatorTest, AucKnownValue) {
  // One mis-ranked pair out of 4: AUC = 3/4.
  std::vector<double> scores = {0.9, 0.3, 0.6, 0.1};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.75);
}

TEST(EvaluatorTest, AveragePrecisionPerfect) {
  EXPECT_DOUBLE_EQ(AveragePrecision({0.9, 0.8, 0.1}, {1, 1, 0}), 1.0);
}

TEST(EvaluatorTest, AveragePrecisionKnownValue) {
  // Ranking: pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<double> scores = {0.9, 0.8, 0.7};
  std::vector<int> labels = {1, 0, 1};
  EXPECT_NEAR(AveragePrecision(scores, labels), 5.0 / 6.0, 1e-9);
}

TEST(EvaluatorTest, AveragePrecisionLowerBoundedByPositiveRate) {
  // Random scores: AP ~ positive rate, never dramatically below.
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 1000; ++i) {
    scores.push_back((i * 37 % 101) / 101.0);
    labels.push_back(i % 2);
  }
  EXPECT_GT(AveragePrecision(scores, labels), 0.4);
}

TEST(EvaluatorTest, WeightedPrfPerfect) {
  std::vector<int> y = {0, 1, 2, 1, 0};
  const WeightedPrf prf = WeightedPrecisionRecallF1(y, y, 3);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
  EXPECT_DOUBLE_EQ(prf.f1, 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(y, y), 1.0);
}

TEST(EvaluatorTest, WeightedPrfMajorityBaseline) {
  // Predicting the majority class everywhere: recall == accuracy ==
  // majority share; precision is share^... computed per formula.
  std::vector<int> actual = {0, 0, 0, 1};
  std::vector<int> predicted = {0, 0, 0, 0};
  const WeightedPrf prf = WeightedPrecisionRecallF1(predicted, actual, 2);
  EXPECT_DOUBLE_EQ(Accuracy(predicted, actual), 0.75);
  EXPECT_DOUBLE_EQ(prf.recall, 0.75);
  EXPECT_NEAR(prf.precision, 0.75 * 0.75, 1e-9);
}

TEST(EvaluatorTest, SummarizeMeanStd) {
  const MeanStd ms = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.0);
  // Sample (ddof=1) std, the numpy convention for the paper's 3-run tables.
  EXPECT_NEAR(ms.std, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(Summarize({}).mean, 0.0);
  EXPECT_DOUBLE_EQ(Summarize({4.2}).std, 0.0);
}

// ---------------------------------------------------------------------------
// EarlyStopMonitor.
// ---------------------------------------------------------------------------

TEST(EarlyStopTest, StopsAfterPatience) {
  EarlyStopMonitor monitor(3, 1e-3);
  EXPECT_FALSE(monitor.Update(0.80));
  EXPECT_FALSE(monitor.Update(0.85));
  EXPECT_FALSE(monitor.Update(0.85));  // no improvement x1
  EXPECT_FALSE(monitor.Update(0.84));  // x2
  EXPECT_TRUE(monitor.Update(0.85));   // x3 (within tolerance) -> stop
  EXPECT_EQ(monitor.best_epoch(), 1);
  EXPECT_DOUBLE_EQ(monitor.best_metric(), 0.85);
}

TEST(EarlyStopTest, ToleranceGatesImprovement) {
  EarlyStopMonitor monitor(1, 1e-2);
  EXPECT_FALSE(monitor.Update(0.5));
  // +0.005 < tolerance: counts as no improvement, patience 1 -> stop.
  EXPECT_TRUE(monitor.Update(0.505));
}

TEST(EarlyStopTest, ImprovementResetsPatience) {
  EarlyStopMonitor monitor(2, 1e-3);
  EXPECT_FALSE(monitor.Update(0.5));
  EXPECT_FALSE(monitor.Update(0.5));   // miss 1
  EXPECT_FALSE(monitor.Update(0.6));   // improvement resets
  EXPECT_FALSE(monitor.Update(0.6));   // miss 1
  EXPECT_TRUE(monitor.Update(0.6));    // miss 2 -> stop
}

// ---------------------------------------------------------------------------
// Leaderboard.
// ---------------------------------------------------------------------------

LeaderboardRecord Rec(const std::string& model, const std::string& dataset,
                      double mean, const std::string& annotation = "") {
  LeaderboardRecord r;
  r.model = model;
  r.dataset = dataset;
  r.task = "link_prediction";
  r.setting = "Transductive";
  r.metric = "AUC";
  r.mean = mean;
  r.annotation = annotation;
  return r;
}

TEST(LeaderboardTest, RankAndAverageRank) {
  Leaderboard board;
  board.Add(Rec("A", "D1", 0.9));
  board.Add(Rec("B", "D1", 0.8));
  board.Add(Rec("C", "D1", 0.7));
  board.Add(Rec("A", "D2", 0.6));
  board.Add(Rec("B", "D2", 0.9));
  board.Add(Rec("C", "D2", 0.7, "*"));  // failed
  EXPECT_EQ(board.Rank("A", "D1", "link_prediction", "Transductive", "AUC"),
            1);
  EXPECT_EQ(board.Rank("C", "D1", "link_prediction", "Transductive", "AUC"),
            3);
  EXPECT_EQ(board.Rank("C", "D2", "link_prediction", "Transductive", "AUC"),
            0);  // failed cell has no rank
  // A: ranks 1 and 2 -> 1.5. C: 3 and worst(3) -> 3.
  EXPECT_DOUBLE_EQ(board.AverageRank("A", {"D1", "D2"}, "link_prediction",
                                     "Transductive", "AUC"),
                   1.5);
  EXPECT_DOUBLE_EQ(board.AverageRank("C", {"D1", "D2"}, "link_prediction",
                                     "Transductive", "AUC"),
                   3.0);
}

TEST(LeaderboardTest, FormatTableMarksBestAndSecond) {
  Leaderboard board;
  board.Add(Rec("A", "D1", 0.90));
  board.Add(Rec("B", "D1", 0.88));
  board.Add(Rec("C", "D1", 0.50));
  const std::string table =
      board.FormatTable({"A", "B", "C"}, {"D1"}, "link_prediction",
                        "Transductive", "AUC");
  EXPECT_NE(table.find("**0.9000"), std::string::npos);
  EXPECT_NE(table.find("_0.8800"), std::string::npos);
  // C trails by > 0.05: no second-best marker.
  EXPECT_EQ(table.find("_0.5000"), std::string::npos);
}

TEST(LeaderboardTest, SecondBestGapRule) {
  Leaderboard board;
  board.Add(Rec("A", "D1", 0.90));
  board.Add(Rec("B", "D1", 0.80));  // gap 0.10 > 0.05
  const std::string table = board.FormatTable(
      {"A", "B"}, {"D1"}, "link_prediction", "Transductive", "AUC");
  EXPECT_EQ(table.find("_0.8000"), std::string::npos);
}

TEST(LeaderboardTest, AnnotationRendered) {
  Leaderboard board;
  board.Add(Rec("A", "D1", 0.0, "*"));
  board.Add(Rec("B", "D1", 0.7));
  const std::string table = board.FormatTable(
      {"A", "B"}, {"D1"}, "link_prediction", "Transductive", "AUC");
  EXPECT_NE(table.find("\t*"), std::string::npos);
  EXPECT_NE(board.ToMarkdown().find("| A |"), std::string::npos);
}

}  // namespace
}  // namespace benchtemp::core
