#include "core/trainer.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"

namespace benchtemp::core {
namespace {

using graph::TemporalGraph;
using models::ModelKind;

/// A small, strongly structured dataset every reasonable model learns on.
TemporalGraph MakeLearnableGraph(uint64_t seed = 21) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 25;
  cfg.num_edges = 900;
  cfg.edge_reuse_prob = 0.7;
  cfg.affinity = 0.7;
  cfg.edge_feature_dim = 4;
  cfg.label_classes = 2;
  cfg.label_positive_rate = 0.15;
  cfg.seed = seed;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

models::ModelConfig SmallModelConfig() {
  models::ModelConfig config;
  config.embedding_dim = 8;
  config.time_dim = 8;
  config.num_neighbors = 4;
  config.num_layers = 1;
  config.num_heads = 2;
  config.num_walks = 2;
  config.walk_length = 2;
  return config;
}

TrainConfig QuickTrainConfig() {
  TrainConfig tc;
  tc.max_epochs = 4;
  tc.batch_size = 100;
  tc.learning_rate = 1e-3f;
  return tc;
}

TEST(TrainerTest, MakeBatchesPartitionsEvents) {
  TemporalGraph g = MakeLearnableGraph();
  std::vector<int64_t> events;
  for (int64_t i = 0; i < 250; ++i) events.push_back(i);
  const auto batches = MakeBatches(g, events, 100);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 100);
  EXPECT_EQ(batches[2].size(), 50);
  EXPECT_EQ(batches[0].srcs[0], g.event(0).src);
}

TEST(TrainerTest, TgnBeatsChanceOnLinkPrediction) {
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kTgn;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  const LinkPredictionResult result = RunLinkPrediction(job);
  EXPECT_EQ(result.status, models::ModelStatus::kOk);
  EXPECT_GT(result.test[0].auc, 0.60);  // transductive, well above chance
  EXPECT_GT(result.test[0].ap, 0.55);
  EXPECT_GT(result.efficiency.seconds_per_epoch, 0.0);
  EXPECT_GT(result.efficiency.epochs_run, 0);
  EXPECT_GT(result.efficiency.max_rss_gb, 0.0);
}

TEST(TrainerTest, EdgeBankRunsWithoutTraining) {
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kEdgeBank;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  const LinkPredictionResult result = RunLinkPrediction(job);
  EXPECT_EQ(result.efficiency.epochs_run, 1);  // heuristic: single pass
  // High reuse dataset: memorization is strong transductively.
  EXPECT_GT(result.test[0].auc, 0.70);
}

TEST(TrainerTest, AllSettingsPopulated) {
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kJodie;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  job.train_config.max_epochs = 2;
  const LinkPredictionResult result = RunLinkPrediction(job);
  for (int s = 0; s < 4; ++s) {
    EXPECT_GE(result.test[s].auc, 0.0);
    EXPECT_LE(result.test[s].auc, 1.0);
  }
  // Inductive sets are non-empty on this dataset.
  EXPECT_GT(result.test[1].count, 0);
  EXPECT_EQ(result.test[1].count,
            result.test[2].count + result.test[3].count);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kJodie;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  job.train_config.max_epochs = 2;
  job.train_config.seed = 5;
  const LinkPredictionResult a = RunLinkPrediction(job);
  const LinkPredictionResult b = RunLinkPrediction(job);
  EXPECT_DOUBLE_EQ(a.test[0].auc, b.test[0].auc);
  EXPECT_DOUBLE_EQ(a.test[3].ap, b.test[3].ap);
}

TEST(TrainerTest, SeedChangesResult) {
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kJodie;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  job.train_config.max_epochs = 2;
  job.train_config.seed = 5;
  const LinkPredictionResult a = RunLinkPrediction(job);
  job.train_config.seed = 6;
  const LinkPredictionResult b = RunLinkPrediction(job);
  EXPECT_NE(a.test[0].auc, b.test[0].auc);
}

TEST(TrainerTest, HistoricalNegativesLowerEdgeBank) {
  // The Appendix J effect: memorization-friendly random negatives vs.
  // historical negatives that EdgeBank cannot separate at all.
  TemporalGraph g = MakeLearnableGraph();
  LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kEdgeBank;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  const LinkPredictionResult random_neg = RunLinkPrediction(job);
  job.train_config.negative_sampling = NegativeSampling::kHistorical;
  const LinkPredictionResult hist_neg = RunLinkPrediction(job);
  EXPECT_LT(hist_neg.test[0].auc, random_neg.test[0].auc - 0.05);
}

TEST(TrainerTest, TgatTimeWindowProducesStarAnnotation) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 0;
  cfg.num_edges = 800;
  cfg.time_granularity = 8;  // extremely coarse
  cfg.time_span = 8.0;
  cfg.seed = 9;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  LinkPredictionJob job;
  job.graph = &g;
  job.kind = ModelKind::kTgat;
  job.model_config = SmallModelConfig();
  job.model_config.tgat_time_window = 0.25;  // below the tick size
  job.train_config = QuickTrainConfig();
  const LinkPredictionResult result = RunLinkPrediction(job);
  EXPECT_EQ(result.status, models::ModelStatus::kRuntimeError);
  EXPECT_EQ(result.annotation, "*");
}

TEST(TrainerTest, NodeClassificationRunsAndBeatsChance) {
  TemporalGraph g = MakeLearnableGraph(33);
  NodeClassificationJob job;
  job.graph = &g;
  job.num_users = 60;
  job.kind = ModelKind::kTgn;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  job.train_config.seed = 1;
  job.pretrain_epochs = 2;
  job.decoder_epochs = 80;
  const NodeClassificationResult result = RunNodeClassification(job);
  EXPECT_EQ(result.status, models::ModelStatus::kOk);
  EXPECT_GT(result.test_auc, 0.55);
  EXPECT_GT(result.accuracy, 0.5);
  EXPECT_GT(result.f1_weighted, 0.0);
}

TEST(TrainerTest, MultiClassNodeClassification) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 0;
  cfg.num_edges = 900;
  cfg.label_classes = 4;
  cfg.label_positive_rate = 0.08;
  cfg.affinity = 0.8;
  cfg.seed = 12;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  NodeClassificationJob job;
  job.graph = &g;
  job.kind = ModelKind::kTgn;
  job.model_config = SmallModelConfig();
  job.train_config = QuickTrainConfig();
  job.pretrain_epochs = 2;
  job.decoder_epochs = 80;
  const NodeClassificationResult result = RunNodeClassification(job);
  EXPECT_GT(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 1.0);
  EXPECT_GT(result.precision_weighted, 0.0);
  EXPECT_GE(result.recall_weighted, result.accuracy - 1e-9);
}

}  // namespace
}  // namespace benchtemp::core
