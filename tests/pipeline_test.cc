// Tests for the pipelined trainer (src/pipeline): the bounded prefetch
// window's backpressure, the depth-is-invisible determinism contract
// (identical result bits and counter digests at any BENCHTEMP_PIPELINE
// depth), overlap accounting on a sampling-heavy workload, checkpoint /
// resume byte-identity with prefetch on, and the watchdog's authority over
// a stall injected into the prefetch stage.

#include "pipeline/pipeline.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "models/factory.h"
#include "obs/metrics.h"
#include "robustness/watchdog.h"
#include "runtime/thread_pool.h"

namespace benchtemp {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Deterministic-duration busy work on the sanctioned clock (sleeping would
/// under-represent CPU contention between producer and consumer).
void BusyWait(double seconds) {
  const double until = obs::NowSeconds() + seconds;
  while (obs::NowSeconds() < until) {
  }
}

graph::TemporalGraph MatrixGraph() {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 15;
  cfg.num_edges = 400;
  cfg.edge_feature_dim = 4;
  cfg.seed = 5;
  graph::TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

core::LinkPredictionJob MatrixJob(const graph::TemporalGraph* g,
                                  models::ModelKind kind) {
  core::LinkPredictionJob job;
  job.graph = g;
  job.num_users = 40;
  job.kind = kind;
  job.model_config.embedding_dim = 8;
  job.model_config.time_dim = 8;
  job.model_config.num_neighbors = 4;
  job.model_config.num_layers = 1;
  job.model_config.num_heads = 2;
  job.model_config.num_walks = 2;
  job.model_config.walk_length = 2;
  job.train_config.max_epochs = 2;
  job.train_config.batch_size = 100;
  job.train_config.seed = 5;
  return job;
}

/// Restores the thread count, fault injector, and metric registry no
/// matter how a test exits.
class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = runtime::ThreadPool::Global().num_threads();
    base::FaultInjector::Global().DisarmAll();
  }
  void TearDown() override {
    base::FaultInjector::Global().DisarmAll();
    obs::MetricRegistry::OverrideEnabledForTest(-1);
    obs::MetricRegistry::Global().Reset();
    runtime::ThreadPool::Global().SetNumThreads(original_threads_);
  }
  int original_threads_ = 1;
};

// ---------------------------------------------------------------------------
// BENCHTEMP_PIPELINE parsing

TEST_F(PipelineTest, DepthFromEnvParsing) {
  const char* saved = std::getenv("BENCHTEMP_PIPELINE");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::unsetenv("BENCHTEMP_PIPELINE");
  EXPECT_EQ(pipeline::DepthFromEnv(), 2);  // default: double-buffer
  ::setenv("BENCHTEMP_PIPELINE", "", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 2);
  ::setenv("BENCHTEMP_PIPELINE", "0", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 0);  // synchronous
  ::setenv("BENCHTEMP_PIPELINE", "1", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 1);
  ::setenv("BENCHTEMP_PIPELINE", "4", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 4);
  ::setenv("BENCHTEMP_PIPELINE", "99", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 8);  // clamped
  ::setenv("BENCHTEMP_PIPELINE", "-3", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 0);
  ::setenv("BENCHTEMP_PIPELINE", "junk", 1);
  EXPECT_EQ(pipeline::DepthFromEnv(), 0);  // unparsable -> synchronous
  if (saved != nullptr) {
    ::setenv("BENCHTEMP_PIPELINE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("BENCHTEMP_PIPELINE");
  }
}

// ---------------------------------------------------------------------------
// Bounded window / backpressure

TEST_F(PipelineTest, BackpressureNeverRunsAheadOfDepth) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  constexpr int kDepth = 3;
  constexpr int64_t kBatches = 32;
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> max_ahead{0};
  pipeline::BatchPrefetcher prefetcher(
      kBatches, kDepth,
      [&](int64_t index) {
        const int64_t ahead = index - delivered.load();
        int64_t prev = max_ahead.load();
        while (ahead > prev &&
               !max_ahead.compare_exchange_weak(prev, ahead)) {
        }
        pipeline::PreparedBatch pb;
        pb.index = index;
        return pb;
      },
      nullptr);
  ASSERT_TRUE(prefetcher.async());
  pipeline::PreparedBatch pb;
  for (int64_t i = 0; i < kBatches; ++i) {
    // A deliberately slow consumer gives the producers every opportunity
    // to overrun the window if scheduling were unbounded.
    BusyWait(0.0005);
    ASSERT_TRUE(prefetcher.Next(&pb));
    EXPECT_EQ(pb.index, i);  // strict index order
    delivered.store(i + 1);
  }
  EXPECT_FALSE(prefetcher.Next(&pb));  // range exhausted
  EXPECT_LE(max_ahead.load(), kDepth);
  EXPECT_EQ(prefetcher.stats().batches, kBatches);
}

TEST_F(PipelineTest, FallsBackToSyncWithoutWorkers) {
  runtime::ThreadPool::Global().SetNumThreads(1);
  int64_t calls = 0;
  pipeline::BatchPrefetcher prefetcher(
      4, 2,
      [&](int64_t index) {
        ++calls;  // inline on the consumer thread: no synchronization
        pipeline::PreparedBatch pb;
        pb.index = index;
        return pb;
      },
      nullptr);
  EXPECT_FALSE(prefetcher.async());
  EXPECT_EQ(calls, 0);  // nothing prepared eagerly in sync mode
  pipeline::PreparedBatch pb;
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(prefetcher.Next(&pb));
    EXPECT_EQ(pb.index, i);
    EXPECT_EQ(calls, i + 1);
  }
  EXPECT_FALSE(prefetcher.Next(&pb));
  EXPECT_DOUBLE_EQ(prefetcher.stats().overlap_ratio(), 0.0);
}

TEST_F(PipelineTest, PrepareExceptionSurfacesFromNext) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  pipeline::BatchPrefetcher prefetcher(
      4, 2,
      [&](int64_t index) {
        if (index == 2) throw std::runtime_error("prepare failed");
        pipeline::PreparedBatch pb;
        pb.index = index;
        return pb;
      },
      nullptr);
  pipeline::PreparedBatch pb;
  ASSERT_TRUE(prefetcher.Next(&pb));
  ASSERT_TRUE(prefetcher.Next(&pb));
  EXPECT_THROW(prefetcher.Next(&pb), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Determinism: depth is invisible to results

TEST_F(PipelineTest, ResultsBitIdenticalAcrossDepths) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  runtime::ThreadPool::Global().SetNumThreads(4);
  const graph::TemporalGraph g = MatrixGraph();
  for (const models::ModelKind kind :
       {models::ModelKind::kTgn, models::ModelKind::kTgat,
        models::ModelKind::kCawn}) {
    std::vector<uint64_t> bits;
    std::vector<std::string> digests;
    for (const int depth : {0, 1, 3}) {
      registry.Reset();
      core::LinkPredictionJob job = MatrixJob(&g, kind);
      job.train_config.pipeline_depth = depth;
      const core::LinkPredictionResult result =
          core::RunLinkPrediction(job);
      ASSERT_EQ(result.status, models::ModelStatus::kOk)
          << models::ModelKindName(kind) << " depth=" << depth;
      EXPECT_EQ(result.efficiency.pipeline_depth, depth);
      if (depth > 0) {
        EXPECT_GT(result.efficiency.pipeline_batches, 0)
            << models::ModelKindName(kind);
      }
      bits.push_back(BitsOf(result.val_transductive.auc));
      bits.push_back(BitsOf(result.test[0].auc));
      bits.push_back(BitsOf(result.test[0].ap));
      digests.push_back(registry.CountersDigest());
    }
    for (size_t i = 3; i < bits.size(); ++i) {
      EXPECT_EQ(bits[i], bits[i % 3])
          << models::ModelKindName(kind) << " depth config " << i / 3;
    }
    for (size_t i = 1; i < digests.size(); ++i) {
      EXPECT_EQ(digests[i], digests[0]) << models::ModelKindName(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// Overlap accounting

TEST_F(PipelineTest, OverlapHidesSamplingHeavyPreparation) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  constexpr int64_t kBatches = 30;
  pipeline::BatchPrefetcher prefetcher(
      kBatches, 2,
      [&](int64_t index) {
        BusyWait(0.001);  // the "sampling" stage
        pipeline::PreparedBatch pb;
        pb.index = index;
        return pb;
      },
      nullptr);
  ASSERT_TRUE(prefetcher.async());
  pipeline::PreparedBatch pb;
  int64_t consumed = 0;
  while (prefetcher.Next(&pb)) {
    BusyWait(0.0015);  // the "compute" stage dominates
    ++consumed;
  }
  EXPECT_EQ(consumed, kBatches);
  const pipeline::PipelineStats stats = prefetcher.stats();
  EXPECT_EQ(stats.batches, kBatches);
  EXPECT_GE(stats.prefetched, kBatches / 2);
  EXPECT_GE(stats.overlap_ratio(), 0.8);
}

TEST_F(PipelineTest, OverlapRatioReportedByTrainer) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  const graph::TemporalGraph g = MatrixGraph();
  core::LinkPredictionJob job = MatrixJob(&g, models::ModelKind::kTgn);
  job.train_config.pipeline_depth = 2;
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  ASSERT_EQ(result.status, models::ModelStatus::kOk);
  EXPECT_EQ(result.efficiency.pipeline_depth, 2);
  EXPECT_GT(result.efficiency.pipeline_batches, 0);
  EXPECT_GE(result.efficiency.pipeline_overlap_ratio, 0.0);
  EXPECT_LE(result.efficiency.pipeline_overlap_ratio, 1.0);
  EXPECT_GE(result.efficiency.pipeline_prepare_seconds, 0.0);

  job.train_config.pipeline_depth = 0;
  const core::LinkPredictionResult sync = core::RunLinkPrediction(job);
  ASSERT_EQ(sync.status, models::ModelStatus::kOk);
  EXPECT_EQ(sync.efficiency.pipeline_depth, 0);
  EXPECT_DOUBLE_EQ(sync.efficiency.pipeline_overlap_ratio, 0.0);
  EXPECT_EQ(sync.efficiency.pipeline_prefetched, 0);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume with prefetch on

TEST_F(PipelineTest, CheckpointResumeByteIdenticalWithPipelineOn) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  const graph::TemporalGraph g = MatrixGraph();
  const std::string path = ::testing::TempDir() + "/pipeline_resume.ckpt";
  std::remove(path.c_str());

  core::LinkPredictionJob job = MatrixJob(&g, models::ModelKind::kTgn);
  job.train_config.pipeline_depth = 2;
  const core::LinkPredictionResult reference = core::RunLinkPrediction(job);
  ASSERT_EQ(reference.status, models::ModelStatus::kOk);

  // Crash mid-epoch-2 (~3 train batches per epoch). The prefetcher had
  // batches in flight at the crash; none of them may leak into the
  // checkpoint — resume must replay the uninterrupted trajectory exactly.
  job.train_config.checkpoint_path = path;
  base::FaultSpec spec;
  spec.at_step = 4;
  base::FaultInjector::Global().Arm(
      base::FaultSite::kThrowForward, spec);
  EXPECT_THROW(core::RunLinkPrediction(job), std::runtime_error);
  base::FaultInjector::Global().DisarmAll();

  const core::LinkPredictionResult resumed = core::RunLinkPrediction(job);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.status, models::ModelStatus::kOk);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(BitsOf(resumed.test[s].auc), BitsOf(reference.test[s].auc));
    EXPECT_EQ(BitsOf(resumed.test[s].ap), BitsOf(reference.test[s].ap));
  }
  EXPECT_EQ(BitsOf(resumed.val_transductive.auc),
            BitsOf(reference.val_transductive.auc));
}

// ---------------------------------------------------------------------------
// Fault injection: a stall in the prefetch stage is still governed by the
// watchdog (BENCHTEMP_FAULTS=stall_batch fires inside the producer now)

TEST_F(PipelineTest, StallInPrefetchStageTripsWatchdog) {
  runtime::ThreadPool::Global().SetNumThreads(4);
  // The CI grammar, on purpose: site@step:count:stall_ms.
  ASSERT_TRUE(
      base::FaultInjector::Global().Configure("stall_batch@0:1:600"));
  const graph::TemporalGraph g = MatrixGraph();
  core::LinkPredictionJob job = MatrixJob(&g, models::ModelKind::kTgn);
  job.train_config.pipeline_depth = 2;
  robustness::Watchdog dog;
  dog.Arm(0.15);
  job.train_config.cancel_token = dog.cancel_token();
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  EXPECT_EQ(result.annotation, "x");
  EXPECT_TRUE(dog.expired());
  EXPECT_GE(base::FaultInjector::Global().fire_count(
                base::FaultSite::kStallBatch),
            1);
  EXPECT_EQ(result.test[0].count, 0);  // wound down before the test pass
}

TEST_F(PipelineTest, StallParityInSynchronousMode) {
  ASSERT_TRUE(
      base::FaultInjector::Global().Configure("stall_batch@0:1:600"));
  const graph::TemporalGraph g = MatrixGraph();
  core::LinkPredictionJob job = MatrixJob(&g, models::ModelKind::kTgn);
  job.train_config.pipeline_depth = 0;
  robustness::Watchdog dog;
  dog.Arm(0.15);
  job.train_config.cancel_token = dog.cancel_token();
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  EXPECT_EQ(result.annotation, "x");
  EXPECT_TRUE(dog.expired());
}

}  // namespace
}  // namespace benchtemp
