// Tests for the kernel layer (src/tensor/kernels/): numerical correctness
// against naive references, the BENCHTEMP_SIMD=0/1 and thread-count
// bit-identity contract, the tape-scoped arena's lifetime rules (including
// the BENCHTEMP_CHECK NaN poison), and the 8-way digest matrix over small
// end-to-end training runs.

#include "tensor/kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injector.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "models/factory.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/debug_check.h"
#include "tensor/expr.h"
#include "tensor/kernels/arena.h"
#include "tensor/kernels/simd.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace benchtemp {
namespace {

using tensor::Tensor;
namespace kernels = tensor::kernels;

uint32_t BitsOf(float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::vector<uint32_t> BitsOf(const std::vector<float>& v) {
  std::vector<uint32_t> bits(v.size());
  std::memcpy(bits.data(), v.data(), v.size() * sizeof(float));
  return bits;
}

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.Normal(0.0f, 1.0f);
  return v;
}

/// Restores SIMD/arena/debug-check overrides, the thread count, and the
/// metric registry no matter how a test exits.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = runtime::ThreadPool::Global().num_threads();
  }
  void TearDown() override {
    kernels::SetSimdEnabledForTest(-1);
    kernels::SetArenaEnabledForTest(-1);
    tensor::expr::SetFusionEnabledForTest(-1);
    tensor::debug_check::SetEnabledForTest(false);
    obs::MetricRegistry::OverrideEnabledForTest(-1);
    obs::MetricRegistry::Global().Reset();
    runtime::ThreadPool::Global().SetNumThreads(original_threads_);
    base::FaultInjector::Global().DisarmAll();
  }
  int original_threads_ = 1;
};

// ---------------------------------------------------------------------------
// Correctness against naive references.
// ---------------------------------------------------------------------------

TEST_F(KernelsTest, GemmMatchesNaiveReference) {
  // Odd sizes exercise the register-tile and k-block remainders.
  const int64_t n = 7, k = 131, m = 13;
  const std::vector<float> a = RandomVec(n * k, 1);
  const std::vector<float> b = RandomVec(k * m, 2);
  std::vector<float> c(static_cast<size_t>(n * m), 0.0f);
  kernels::Gemm(a.data(), b.data(), c.data(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      float want = 0.0f;
      for (int64_t p = 0; p < k; ++p) want += a[i * k + p] * b[p * m + j];
      EXPECT_NEAR(c[i * m + j], want, 1e-4) << "at (" << i << "," << j << ")";
    }
  }
}

TEST_F(KernelsTest, GemmBackwardsMatchNaiveReferences) {
  const int64_t n = 9, k = 70, m = 6;
  const std::vector<float> a = RandomVec(n * k, 3);
  const std::vector<float> b = RandomVec(k * m, 4);
  const std::vector<float> dc = RandomVec(n * m, 5);
  std::vector<float> da(static_cast<size_t>(n * k), 0.0f);
  std::vector<float> db(static_cast<size_t>(k * m), 0.0f);
  kernels::GemmNT(dc.data(), b.data(), da.data(), n, k, m);
  kernels::GemmTN(a.data(), dc.data(), db.data(), n, k, m);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t l = 0; l < k; ++l) {
      float want = 0.0f;
      for (int64_t j = 0; j < m; ++j) want += dc[i * m + j] * b[l * m + j];
      EXPECT_NEAR(da[i * k + l], want, 1e-4);
    }
  }
  for (int64_t l = 0; l < k; ++l) {
    for (int64_t j = 0; j < m; ++j) {
      float want = 0.0f;
      for (int64_t i = 0; i < n; ++i) want += a[i * k + l] * dc[i * m + j];
      EXPECT_NEAR(db[l * m + j], want, 1e-4);
    }
  }
}

TEST_F(KernelsTest, SoftmaxRowNormalizesAndMasks) {
  const int64_t d = 11;
  const std::vector<float> in = RandomVec(d, 7);
  std::vector<float> mask(static_cast<size_t>(d), 1.0f);
  mask[3] = 0.0f;
  mask[8] = 0.0f;
  std::vector<float> out(static_cast<size_t>(d), -1.0f);
  kernels::SoftmaxRow(in.data(), mask.data(), d, out.data());
  float total = 0.0f;
  for (int64_t i = 0; i < d; ++i) total += out[static_cast<size_t>(i)];
  EXPECT_NEAR(total, 1.0f, 1e-5);
  EXPECT_EQ(BitsOf(out[3]), BitsOf(0.0f));  // masked: exact +0
  EXPECT_EQ(BitsOf(out[8]), BitsOf(0.0f));
  // Fully masked row collapses to all zeros, not NaN.
  std::fill(mask.begin(), mask.end(), 0.0f);
  kernels::SoftmaxRow(in.data(), mask.data(), d, out.data());
  for (float v : out) EXPECT_EQ(BitsOf(v), BitsOf(0.0f));
}

TEST_F(KernelsTest, BceMatchesStableFormula) {
  const int64_t n = 23;
  const std::vector<float> logits = RandomVec(n, 9);
  std::vector<float> targets(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    targets[static_cast<size_t>(i)] = i % 2 == 0 ? 1.0f : 0.0f;
  }
  const float mean = kernels::BceForwardMean(logits.data(), targets.data(), n);
  double want = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double x = logits[static_cast<size_t>(i)];
    const double t = targets[static_cast<size_t>(i)];
    const double p = 1.0 / (1.0 + std::exp(-x));
    want += -(t * std::log(p) + (1.0 - t) * std::log(1.0 - p));
  }
  EXPECT_NEAR(mean, want / static_cast<double>(n), 1e-4);
}

// ---------------------------------------------------------------------------
// Bit-identity: vector vs scalar path, 1 vs 8 threads.
// ---------------------------------------------------------------------------

TEST_F(KernelsTest, VectorAndScalarPathsBitIdentical) {
  // Sizes with ragged tails (not multiples of kLanes or the GEMM tiles).
  const int64_t n = 37, k = 67, m = 19;
  const std::vector<float> a = RandomVec(n * k, 11);
  const std::vector<float> b = RandomVec(k * m, 12);
  const std::vector<float> x = RandomVec(n * m, 13);
  const std::vector<float> y = RandomVec(n * m, 14);

  auto run_all = [&]() {
    std::vector<float> out;
    std::vector<float> buf(static_cast<size_t>(n * m), 0.0f);
    kernels::Gemm(a.data(), b.data(), buf.data(), n, k, m);
    out.insert(out.end(), buf.begin(), buf.end());
    std::fill(buf.begin(), buf.end(), 0.0f);
    kernels::GemmNT(x.data(), b.data(), buf.data(), n, m, m);
    out.insert(out.end(), buf.begin(), buf.end());
    std::vector<float> db(static_cast<size_t>(m * m), 0.0f);
    kernels::GemmTN(x.data(), y.data(), db.data(), n, m, m);
    out.insert(out.end(), db.begin(), db.end());

    out.push_back(kernels::ReduceSum(x.data(), n * m));
    out.push_back(kernels::Dot(x.data(), y.data(), n * m));

    buf = x;
    kernels::Add(buf.data(), y.data(), n * m);
    kernels::Mul(buf.data(), y.data(), n * m);
    kernels::Sub(buf.data(), y.data(), n * m);
    kernels::MulAdd(buf.data(), x.data(), y.data(), n * m);
    kernels::Axpy(buf.data(), 0.37f, y.data(), n * m);
    kernels::Scale(buf.data(), 1.13f, n * m);
    kernels::AddScalar(buf.data(), -0.21f, n * m);
    out.insert(out.end(), buf.begin(), buf.end());

    kernels::AddOut(buf.data(), x.data(), y.data(), n * m);
    kernels::SubOut(buf.data(), x.data(), y.data(), n * m);
    kernels::MulOut(buf.data(), x.data(), y.data(), n * m);
    kernels::ScaleOut(buf.data(), -2.5f, x.data(), n * m);
    kernels::AddScalarOut(buf.data(), 0.44f, x.data(), n * m);
    out.insert(out.end(), buf.begin(), buf.end());

    std::vector<float> sig(static_cast<size_t>(n * m));
    kernels::SigmoidForward(x.data(), sig.data(), n * m);
    std::vector<float> gx(static_cast<size_t>(n * m), 0.0f);
    kernels::SigmoidBackward(gx.data(), y.data(), sig.data(), n * m);
    out.insert(out.end(), sig.begin(), sig.end());
    out.insert(out.end(), gx.begin(), gx.end());

    std::vector<float> soft(static_cast<size_t>(m));
    kernels::SoftmaxRow(x.data(), nullptr, m, soft.data());
    out.insert(out.end(), soft.begin(), soft.end());

    std::vector<float> targets(static_cast<size_t>(n), 1.0f);
    out.push_back(kernels::BceForwardMean(x.data(), targets.data(), n));
    std::vector<float> g(static_cast<size_t>(n), 0.0f);
    kernels::BceBackward(g.data(), x.data(), targets.data(), 0.5f, n);
    out.insert(out.end(), g.begin(), g.end());
    return out;
  };

  kernels::SetSimdEnabledForTest(1);
  const auto vec = run_all();
  kernels::SetSimdEnabledForTest(0);
  const auto scalar = run_all();
  EXPECT_EQ(BitsOf(vec), BitsOf(scalar));
}

TEST_F(KernelsTest, GemmBitIdenticalAcrossThreadCounts) {
  const int64_t n = 300, k = 40, m = 24;  // big enough to split into chunks
  const std::vector<float> a = RandomVec(n * k, 21);
  const std::vector<float> b = RandomVec(k * m, 22);
  std::vector<std::vector<uint32_t>> per_thread_bits;
  for (const int threads : {1, 8}) {
    runtime::ThreadPool::Global().SetNumThreads(threads);
    std::vector<float> c(static_cast<size_t>(n * m), 0.0f);
    kernels::Gemm(a.data(), b.data(), c.data(), n, k, m);
    std::vector<float> da(static_cast<size_t>(n * k), 0.0f);
    kernels::GemmNT(c.data(), b.data(), da.data(), n, k, m);
    std::vector<float> db(static_cast<size_t>(k * m), 0.0f);
    kernels::GemmTN(a.data(), c.data(), db.data(), n, k, m);
    c.insert(c.end(), da.begin(), da.end());
    c.insert(c.end(), db.begin(), db.end());
    per_thread_bits.push_back(BitsOf(c));
  }
  EXPECT_EQ(per_thread_bits[0], per_thread_bits[1]);
}

// ---------------------------------------------------------------------------
// Arena lifetime.
// ---------------------------------------------------------------------------

TEST_F(KernelsTest, NewTensorUsesArenaOnlyInsideScope) {
  kernels::SetArenaEnabledForTest(1);
  Tensor outside = kernels::NewTensor({4, 4});
  EXPECT_FALSE(outside.arena_backed());
  {
    kernels::TapeScope scope;
    Tensor inside = kernels::NewTensor({4, 4});
    EXPECT_TRUE(inside.arena_backed());
    EXPECT_GT(kernels::Arena::ThreadLocal().LiveFloats(), 0);
    for (int64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(BitsOf(inside.at(i)), BitsOf(0.0f));  // zero-filled
    }
  }
  EXPECT_EQ(kernels::Arena::ThreadLocal().LiveFloats(), 0);
  // BENCHTEMP_ARENA=0: heap even inside a scope.
  kernels::SetArenaEnabledForTest(0);
  kernels::TapeScope scope;
  Tensor disabled = kernels::NewTensor({4, 4});
  EXPECT_FALSE(disabled.arena_backed());
}

TEST_F(KernelsTest, ScopesNestAndRewindToTheirOwnMark) {
  kernels::SetArenaEnabledForTest(1);
  kernels::TapeScope outer;
  Tensor a = kernels::NewTensor({8});
  const int64_t after_outer = kernels::Arena::ThreadLocal().LiveFloats();
  {
    kernels::TapeScope inner;
    Tensor b = kernels::NewTensor({1024});
    EXPECT_GT(kernels::Arena::ThreadLocal().LiveFloats(), after_outer);
  }
  EXPECT_EQ(kernels::Arena::ThreadLocal().LiveFloats(), after_outer);
  a.at(0) = 3.0f;  // outer-scope storage survives the inner rewind
  EXPECT_EQ(BitsOf(a.at(0)), BitsOf(3.0f));
}

TEST_F(KernelsTest, RewindPoisonsFreedSpanUnderCheck) {
  kernels::SetArenaEnabledForTest(1);
  tensor::debug_check::SetEnabledForTest(true);
  float* span = nullptr;
  {
    kernels::TapeScope scope;
    span = kernels::Arena::ThreadLocal().Alloc(32);
    ASSERT_NE(span, nullptr);
    for (int i = 0; i < 32; ++i) span[i] = 1.0f;
  }
  // The span outlived its scope: every read must be a loud NaN, not the
  // stale (or silently recycled) payload.
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(std::isnan(span[i])) << "offset " << i;
  }
}

TEST_F(KernelsTest, CopiesOfArenaTensorsDetachToHeap) {
  kernels::SetArenaEnabledForTest(1);
  Tensor copy;
  {
    kernels::TapeScope scope;
    Tensor t = kernels::NewTensor({3});
    t.at(0) = 1.0f;
    t.at(1) = 2.0f;
    t.at(2) = 3.0f;
    copy = t;  // deep-copies to heap: this is what Detach/snapshots rely on
    EXPECT_TRUE(t.arena_backed());
    EXPECT_FALSE(copy.arena_backed());
  }
  EXPECT_EQ(BitsOf(copy.at(0)), BitsOf(1.0f));
  EXPECT_EQ(BitsOf(copy.at(1)), BitsOf(2.0f));
  EXPECT_EQ(BitsOf(copy.at(2)), BitsOf(3.0f));
}

// ---------------------------------------------------------------------------
// End-to-end digest matrix: {1,8 threads} x {SIMD 0,1} x {arena 0,1}.
// ---------------------------------------------------------------------------

graph::TemporalGraph MatrixGraph() {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 15;
  cfg.num_edges = 400;
  cfg.edge_feature_dim = 4;
  cfg.seed = 5;
  graph::TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

core::LinkPredictionJob MatrixJob(const graph::TemporalGraph* g,
                                  models::ModelKind kind) {
  core::LinkPredictionJob job;
  job.graph = g;
  job.num_users = 40;
  job.kind = kind;
  job.model_config.embedding_dim = 8;
  job.model_config.time_dim = 8;
  job.model_config.num_neighbors = 4;
  job.model_config.num_layers = 1;
  job.model_config.num_heads = 2;
  job.train_config.max_epochs = 2;
  job.train_config.batch_size = 100;
  job.train_config.seed = 5;
  return job;
}

TEST_F(KernelsTest, TrainingBitIdenticalAcrossSimdThreadsAndArena) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  const graph::TemporalGraph g = MatrixGraph();
  for (const models::ModelKind kind :
       {models::ModelKind::kTgn, models::ModelKind::kTgat}) {
    std::vector<uint64_t> auc_bits;
    // Counter digests are compared within the same arena setting: the
    // arena.bytes/arena.resets counters legitimately differ when the
    // arena is off.
    std::vector<std::string> digests_arena_on;
    std::vector<std::string> digests_arena_off;
    for (const int threads : {1, 8}) {
      for (const int simd : {0, 1}) {
        for (const int arena : {0, 1}) {
          runtime::ThreadPool::Global().SetNumThreads(threads);
          kernels::SetSimdEnabledForTest(simd);
          kernels::SetArenaEnabledForTest(arena);
          registry.Reset();
          const core::LinkPredictionResult result =
              core::RunLinkPrediction(MatrixJob(&g, kind));
          ASSERT_EQ(result.status, models::ModelStatus::kOk)
              << models::ModelKindName(kind) << " threads=" << threads
              << " simd=" << simd << " arena=" << arena;
          auc_bits.push_back(BitsOf(result.val_transductive.auc));
          auc_bits.push_back(BitsOf(result.test[0].auc));
          (arena != 0 ? digests_arena_on : digests_arena_off)
              .push_back(registry.CountersDigest());
        }
      }
    }
    for (size_t i = 2; i < auc_bits.size(); i += 2) {
      EXPECT_EQ(auc_bits[i], auc_bits[0])
          << models::ModelKindName(kind) << " config " << i / 2;
      EXPECT_EQ(auc_bits[i + 1], auc_bits[1])
          << models::ModelKindName(kind) << " config " << i / 2;
    }
    for (size_t i = 1; i < digests_arena_on.size(); ++i) {
      EXPECT_EQ(digests_arena_on[i], digests_arena_on[0])
          << models::ModelKindName(kind);
    }
    for (size_t i = 1; i < digests_arena_off.size(); ++i) {
      EXPECT_EQ(digests_arena_off[i], digests_arena_off[0])
          << models::ModelKindName(kind);
    }
  }
}

TEST_F(KernelsTest, TrainingBitIdenticalFusedVsEager) {
  // BENCHTEMP_FUSION=0/1 must not move a single training bit, at any
  // thread count, either SIMD setting, and with the async pipeline on or
  // off. The model trajectory (AUC/AP bits) is compared across ALL
  // configurations; counter digests are compared within a fusion setting —
  // fusion legitimately changes parallel_for.calls and arena.bytes (fewer,
  // larger passes), which is the point of the optimization.
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  const graph::TemporalGraph g = MatrixGraph();
  for (const models::ModelKind kind :
       {models::ModelKind::kTgn, models::ModelKind::kTgat}) {
    std::vector<uint64_t> auc_bits;
    std::vector<std::string> digests_fused;
    std::vector<std::string> digests_eager;
    for (const int threads : {1, 8}) {
      for (const int simd : {0, 1}) {
        for (const int depth : {0, 2}) {
          for (const int fusion : {0, 1}) {
            runtime::ThreadPool::Global().SetNumThreads(threads);
            kernels::SetSimdEnabledForTest(simd);
            kernels::SetArenaEnabledForTest(1);
            tensor::expr::SetFusionEnabledForTest(fusion);
            registry.Reset();
            core::LinkPredictionJob job = MatrixJob(&g, kind);
            job.train_config.pipeline_depth = depth;
            const core::LinkPredictionResult result =
                core::RunLinkPrediction(job);
            ASSERT_EQ(result.status, models::ModelStatus::kOk)
                << models::ModelKindName(kind) << " threads=" << threads
                << " simd=" << simd << " depth=" << depth
                << " fusion=" << fusion;
            auc_bits.push_back(BitsOf(result.val_transductive.auc));
            auc_bits.push_back(BitsOf(result.test[0].auc));
            auc_bits.push_back(BitsOf(result.test[0].ap));
            (fusion != 0 ? digests_fused : digests_eager)
                .push_back(registry.CountersDigest());
          }
        }
      }
    }
    for (size_t i = 3; i < auc_bits.size(); i += 3) {
      EXPECT_EQ(auc_bits[i], auc_bits[0])
          << models::ModelKindName(kind) << " config " << i / 3;
      EXPECT_EQ(auc_bits[i + 1], auc_bits[1])
          << models::ModelKindName(kind) << " config " << i / 3;
      EXPECT_EQ(auc_bits[i + 2], auc_bits[2])
          << models::ModelKindName(kind) << " config " << i / 3;
    }
    for (size_t i = 1; i < digests_fused.size(); ++i) {
      EXPECT_EQ(digests_fused[i], digests_fused[0])
          << models::ModelKindName(kind) << " fused config " << i;
    }
    for (size_t i = 1; i < digests_eager.size(); ++i) {
      EXPECT_EQ(digests_eager[i], digests_eager[0])
          << models::ModelKindName(kind) << " eager config " << i;
    }
    // Fusion's flop accounting is call-for-call identical to the eager
    // ops', and fewer-but-larger arena allocations must strictly shrink
    // arena.bytes: check both directly rather than whole-digest equality.
    auto counter_of = [](const std::string& digest, const char* name) {
      const size_t pos = digest.find(name);
      EXPECT_NE(pos, std::string::npos) << name;
      return std::strtoll(digest.c_str() + pos + std::strlen(name) + 1,
                          nullptr, 10);
    };
    EXPECT_EQ(counter_of(digests_fused[0], "kernels.flops"),
              counter_of(digests_eager[0], "kernels.flops"))
        << models::ModelKindName(kind);
    EXPECT_LT(counter_of(digests_fused[0], "arena.bytes"),
              counter_of(digests_eager[0], "arena.bytes"))
        << models::ModelKindName(kind);
  }
}

TEST_F(KernelsTest, CheckpointResumeByteIdenticalWithArenaAndCheck) {
  // Arena on + tape validator on: a crash/resume cycle must still replay
  // the exact trajectory (PR2's grad-buffer pre-allocation contract).
  kernels::SetArenaEnabledForTest(1);
  tensor::debug_check::SetEnabledForTest(true);
  const graph::TemporalGraph g = MatrixGraph();
  const std::string path =
      ::testing::TempDir() + "/kernels_arena_resume.ckpt";
  std::remove(path.c_str());

  core::LinkPredictionJob job = MatrixJob(&g, models::ModelKind::kTgn);
  const core::LinkPredictionResult reference = core::RunLinkPrediction(job);
  ASSERT_EQ(reference.status, models::ModelStatus::kOk);

  job.train_config.checkpoint_path = path;
  base::FaultSpec spec;
  spec.at_step = 4;  // mid-epoch-2 (~3 train batches per epoch)
  base::FaultInjector::Global().Arm(base::FaultSite::kThrowForward,
                                          spec);
  EXPECT_THROW(core::RunLinkPrediction(job), std::runtime_error);
  base::FaultInjector::Global().DisarmAll();

  const core::LinkPredictionResult resumed = core::RunLinkPrediction(job);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.status, models::ModelStatus::kOk);
  EXPECT_EQ(BitsOf(resumed.val_transductive.auc),
            BitsOf(reference.val_transductive.auc));
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(BitsOf(resumed.test[s].auc), BitsOf(reference.test[s].auc));
    EXPECT_EQ(BitsOf(resumed.test[s].ap), BitsOf(reference.test[s].ap));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace benchtemp
