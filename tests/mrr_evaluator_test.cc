// Tests for the TGB-style ranking evaluation stack: hand-computed golden
// ranks under both tie policies, the Hits@h tie semantics, CandidateSampler
// laws (collision-freedom, in-set dedup, range clamping, pure keyed
// determinism), the historical/uniform candidate mix, the collision
// counters, and end-to-end bit-identity of MRR/Hits@k across pipeline
// depths and thread counts.

#include "core/mrr_evaluator.h"

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/edge_sampler.h"
#include "core/trainer.h"
#include "datagen/synthetic.h"
#include "graph/temporal_graph.h"
#include "models/factory.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/numeric.h"
#include "tensor/random.h"

namespace benchtemp {
namespace {

using core::CandidateConfig;
using core::CandidateSampler;
using core::RankingMetrics;
using core::RankOfPositive;
using core::TiePolicy;
using graph::TemporalGraph;

uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TemporalGraph RankGraph(uint64_t seed = 5) {
  datagen::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 15;
  cfg.num_edges = 400;
  cfg.edge_feature_dim = 4;
  cfg.seed = seed;
  TemporalGraph g = datagen::Generate(cfg);
  g.InitNodeFeatures(8);
  return g;
}

/// Restores the thread count and metric registry no matter how a test
/// exits.
class MrrEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_threads_ = runtime::ThreadPool::Global().num_threads();
  }
  void TearDown() override {
    obs::MetricRegistry::OverrideEnabledForTest(-1);
    obs::MetricRegistry::Global().Reset();
    runtime::ThreadPool::Global().SetNumThreads(original_threads_);
  }
  int original_threads_ = 1;
};

// ---------------------------------------------------------------------------
// RankOfPositive golden values, tie groups pinned under both policies.
// ---------------------------------------------------------------------------

TEST_F(MrrEvaluatorTest, RankGoldenValuesWithTieGroup) {
  // One candidate better (0.95), two exact ties (0.9), two worse.
  const std::vector<double> cand = {0.5, 0.95, 0.9, 0.9, 0.1};
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.9, cand.data(), 5, TiePolicy::kMeanRank), 3.0);
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.9, cand.data(), 5, TiePolicy::kOptimistic), 2.0);
}

TEST_F(MrrEvaluatorTest, PositiveBestAndWorstRanks) {
  const std::vector<double> cand = {0.1, 0.2, 0.3};
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.9, cand.data(), 3, TiePolicy::kMeanRank), 1.0);
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.0, cand.data(), 3, TiePolicy::kMeanRank), 4.0);
}

TEST_F(MrrEvaluatorTest, ConstantScorerMidranksUnderMeanRank) {
  // A model scoring everything identically must not look like a winner:
  // mean-rank puts the positive mid-pack, optimistic pins it at 1 (the
  // policy's documented purpose of detecting constant scorers).
  const std::vector<double> cand(10, 0.7);
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.7, cand.data(), 10, TiePolicy::kMeanRank), 6.0);
  EXPECT_DOUBLE_EQ(
      RankOfPositive(0.7, cand.data(), 10, TiePolicy::kOptimistic), 1.0);
}

TEST_F(MrrEvaluatorTest, HitsCutoffsUseHalfIntegerTieRanks) {
  // rank 1.5 (two-way tie at the top) misses Hits@1, makes Hits@10;
  // rank 11 misses Hits@10.
  const RankingMetrics m =
      core::RankingFromRanks({1.0, 1.5, 2.0, 11.0});
  EXPECT_EQ(m.count, 4);
  EXPECT_DOUBLE_EQ(m.hits_at_1, 0.25);
  EXPECT_DOUBLE_EQ(m.hits_at_10, 0.75);
  EXPECT_DOUBLE_EQ(m.mrr, (1.0 + 1.0 / 1.5 + 0.5 + 1.0 / 11.0) / 4.0);
}

TEST_F(MrrEvaluatorTest, EmptyRanksReportZeroCount) {
  const RankingMetrics m = core::RankingFromRanks({});
  EXPECT_EQ(m.count, 0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.0);
}

TEST_F(MrrEvaluatorTest, EvaluatorAccumulatesBatches) {
  core::MrrEvaluator evaluator;
  // Two batches of two positives, k = 2.
  evaluator.AddBatch({0.9, 0.1}, {0.5, 0.2, 0.8, 0.7}, 2);
  evaluator.AddBatch({0.6}, {0.6, 0.4}, 2);
  ASSERT_EQ(evaluator.ranks().size(), 3u);
  EXPECT_DOUBLE_EQ(evaluator.ranks()[0], 1.0);  // beats {0.5, 0.2}
  EXPECT_DOUBLE_EQ(evaluator.ranks()[1], 3.0);  // below {0.8, 0.7}
  EXPECT_DOUBLE_EQ(evaluator.ranks()[2], 1.5);  // ties 0.6, beats 0.4
  const RankingMetrics m = evaluator.Metrics();
  EXPECT_EQ(m.count, 3);
  EXPECT_DOUBLE_EQ(m.mrr, (1.0 + 1.0 / 3.0 + 1.0 / 1.5) / 3.0);
}

// ---------------------------------------------------------------------------
// CandidateSampler laws.
// ---------------------------------------------------------------------------

TEST_F(MrrEvaluatorTest, CandidateSetsAreCollisionFreeAndDeduplicated) {
  const TemporalGraph g = RankGraph();
  std::vector<int64_t> train_events;
  for (int64_t i = 0; i < g.num_events() / 2; ++i) train_events.push_back(i);
  CandidateConfig config;
  config.k = 10;
  const CandidateSampler sampler(g, train_events, 40, 55, config);
  ASSERT_EQ(sampler.k(), 10);
  // Property: over many seeded rows, every candidate set is exactly k
  // distinct in-range destinations, none the positive.
  tensor::Rng rng(7);
  for (int row = 0; row < 500; ++row) {
    const int32_t src = tensor::NarrowId(rng.UniformInt(40), "test: src");
    const int32_t positive =
        40 + tensor::NarrowId(rng.UniformInt(15), "test: dst");
    const std::vector<int32_t> cand =
        sampler.SampleCandidates(tensor::SplitMix64(11, row), src, positive);
    ASSERT_EQ(cand.size(), 10u);
    std::set<int32_t> unique;
    for (int32_t d : cand) {
      EXPECT_GE(d, 40);
      EXPECT_LT(d, 55);
      EXPECT_NE(d, positive);
      unique.insert(d);
    }
    EXPECT_EQ(unique.size(), cand.size()) << "duplicate in row " << row;
  }
}

TEST_F(MrrEvaluatorTest, RequestedKClampsToRangeAndCoversIt) {
  const TemporalGraph g = RankGraph();
  CandidateConfig config;
  config.k = 100;  // far above the 15-destination range
  const CandidateSampler sampler(g, {0, 1, 2}, 40, 55, config);
  ASSERT_EQ(sampler.k(), 14);  // range - 1: all non-positive destinations
  const std::vector<int32_t> cand = sampler.SampleCandidates(3, 0, 47);
  std::set<int32_t> unique(cand.begin(), cand.end());
  EXPECT_EQ(unique.size(), 14u);
  EXPECT_EQ(unique.count(47), 0u);
}

TEST_F(MrrEvaluatorTest, BatchRowsMatchPerRowKeying) {
  const TemporalGraph g = RankGraph();
  std::vector<int64_t> train_events;
  for (int64_t i = 0; i < g.num_events() / 2; ++i) train_events.push_back(i);
  CandidateConfig config;
  config.k = 6;
  const CandidateSampler sampler(g, train_events, 40, 55, config);
  const std::vector<int32_t> srcs = {0, 3, 7, 11};
  const std::vector<int32_t> dsts = {41, 44, 50, 54};
  const uint64_t stream_seed = 99;
  const std::vector<int32_t> batch =
      sampler.SampleCandidateBatch(stream_seed, srcs, dsts);
  ASSERT_EQ(batch.size(), srcs.size() * 6u);
  for (size_t i = 0; i < srcs.size(); ++i) {
    const std::vector<int32_t> row = sampler.SampleCandidates(
        tensor::SplitMix64(stream_seed, static_cast<uint64_t>(i)), srcs[i],
        dsts[i]);
    for (size_t j = 0; j < 6u; ++j) {
      EXPECT_EQ(batch[i * 6 + j], row[j]) << "row " << i << " slot " << j;
    }
  }
  // Same seeds -> same bytes, stateless sampler.
  EXPECT_EQ(sampler.SampleCandidateBatch(stream_seed, srcs, dsts), batch);
}

TEST_F(MrrEvaluatorTest, HistoricalFractionDrawsFromTrainHistory) {
  TemporalGraph g;
  // Source 0's training history: destinations 10..17 (8 of 20 in range).
  for (int32_t d = 10; d < 18; ++d) {
    g.AddInteraction(0, d, static_cast<double>(d));
  }
  g.AddInteraction(1, 25, 100.0);
  std::vector<int64_t> train_events;
  for (int64_t i = 0; i < 8; ++i) train_events.push_back(i);
  CandidateConfig config;
  config.k = 8;
  config.historical_fraction = 0.5;
  const CandidateSampler sampler(g, train_events, 10, 30, config);
  const std::vector<int32_t> cand = sampler.SampleCandidates(5, 0, 20);
  int historical = 0;
  for (int32_t d : cand) {
    if (d >= 10 && d < 18) ++historical;
  }
  // Half of k = 4 slots target the history pool; uniform slots may also
  // land there by chance, never fewer.
  EXPECT_GE(historical, 4);
  // A source with no history degrades to all-uniform (still collision-free
  // and deduplicated), counted as pool fallbacks, not an abort.
  obs::MetricRegistry::OverrideEnabledForTest(1);
  obs::MetricRegistry::Global().Reset();
  const std::vector<int32_t> bare = sampler.SampleCandidates(6, 5, 20);
  std::set<int32_t> unique(bare.begin(), bare.end());
  EXPECT_EQ(unique.size(), bare.size());
  EXPECT_GE(obs::MetricRegistry::Global().value(
                obs::Counter::kSamplerPoolFallbacks),
            4);
}

TEST_F(MrrEvaluatorTest, NegativeSamplerCollisionsAreRejectedAndCounted) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  obs::MetricRegistry::Global().Reset();
  core::RandomEdgeSampler sampler(0, 3, 11);
  // Every positive is inside a 3-wide range: collisions are frequent, every
  // one must be rejected and counted.
  std::vector<int32_t> srcs(300, 0);
  std::vector<int32_t> positives;
  for (int i = 0; i < 300; ++i) positives.push_back(i % 3);
  const std::vector<int32_t> negatives =
      sampler.SampleNegatives(srcs, positives);
  for (size_t i = 0; i < negatives.size(); ++i) {
    EXPECT_NE(negatives[i], positives[i]);
  }
  EXPECT_GT(obs::MetricRegistry::Global().value(
                obs::Counter::kSamplerCollisionsRejected),
            0);
}

// ---------------------------------------------------------------------------
// End-to-end: ranking metrics are bit-identical at any pipeline depth and
// thread count, and candidate work does not perturb the counter digest.
// ---------------------------------------------------------------------------

TEST_F(MrrEvaluatorTest, RankingBitIdenticalAcrossDepthsAndThreads) {
  obs::MetricRegistry::OverrideEnabledForTest(1);
  auto& registry = obs::MetricRegistry::Global();
  const TemporalGraph g = RankGraph();
  std::vector<uint64_t> bits;
  std::vector<std::string> digests;
  constexpr int kProbes = 4;
  const struct {
    int threads;
    int depth;
  } grid[] = {{1, 0}, {1, 2}, {8, 0}, {8, 2}};
  for (const auto& cell : grid) {
    runtime::ThreadPool::Global().SetNumThreads(cell.threads);
    registry.Reset();
    core::LinkPredictionJob job;
    job.graph = &g;
    job.num_users = 40;
    job.kind = models::ModelKind::kTgn;
    job.model_config.embedding_dim = 8;
    job.model_config.time_dim = 8;
    job.model_config.num_neighbors = 4;
    job.model_config.num_layers = 1;
    job.model_config.num_heads = 2;
    job.train_config.max_epochs = 2;
    job.train_config.batch_size = 100;
    job.train_config.seed = 5;
    job.train_config.pipeline_depth = cell.depth;
    job.train_config.mrr_k = 8;
    const core::LinkPredictionResult result = core::RunLinkPrediction(job);
    ASSERT_EQ(result.status, models::ModelStatus::kOk);
    EXPECT_EQ(result.mrr_k, 8);
    EXPECT_GT(result.test_ranking[0].count, 0);
    // Ranking metrics sit inside [0, 1] with Hits@1 <= MRR <= Hits@10.
    EXPECT_GE(result.test_ranking[0].mrr, 0.0);
    EXPECT_LE(result.test_ranking[0].mrr, 1.0);
    EXPECT_LE(result.test_ranking[0].hits_at_1,
              result.test_ranking[0].mrr + 1e-12);
    EXPECT_LE(result.test_ranking[0].mrr,
              result.test_ranking[0].hits_at_10 + 1e-12);
    bits.push_back(BitsOf(result.test_ranking[0].mrr));
    bits.push_back(BitsOf(result.test_ranking[0].hits_at_10));
    bits.push_back(BitsOf(result.val_ranking.mrr));
    bits.push_back(BitsOf(result.test[0].auc));
    digests.push_back(registry.CountersDigest());
  }
  for (size_t i = kProbes; i < bits.size(); ++i) {
    EXPECT_EQ(bits[i], bits[i % kProbes]) << "probe " << i;
  }
  for (size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "grid cell " << i;
  }
}

TEST_F(MrrEvaluatorTest, RankingOffByDefaultLeavesMetricsEmpty) {
  const TemporalGraph g = RankGraph();
  core::LinkPredictionJob job;
  job.graph = &g;
  job.num_users = 40;
  job.kind = models::ModelKind::kJodie;
  job.model_config.embedding_dim = 8;
  job.model_config.time_dim = 8;
  job.train_config.max_epochs = 1;
  job.train_config.batch_size = 100;
  job.train_config.mrr_k = 0;  // explicit off (does not consult the env)
  const core::LinkPredictionResult result = core::RunLinkPrediction(job);
  ASSERT_EQ(result.status, models::ModelStatus::kOk);
  EXPECT_EQ(result.mrr_k, 0);
  EXPECT_EQ(result.test_ranking[0].count, 0);
  EXPECT_EQ(result.val_ranking.count, 0);
}

}  // namespace
}  // namespace benchtemp
